//===- grammar/GrammarEdit.cpp ---------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarEdit.h"

#include "grammar/Analysis.h"
#include "grammar/GrammarBuilder.h"

#include <algorithm>
#include <cassert>

using namespace lalrcex;

const char *lalrcex::editKindName(EditKind K) {
  switch (K) {
  case EditKind::AddAlternative:
    return "add-alternative";
  case EditKind::RemoveAlternative:
    return "remove-alternative";
  case EditKind::ReorderAlternatives:
    return "reorder-alternatives";
  case EditKind::RenameNonterminal:
    return "rename-nonterminal";
  case EditKind::TogglePrecedence:
    return "toggle-precedence";
  case EditKind::ToggleExpect:
    return "toggle-expect";
  case EditKind::ToggleNonterminal:
    return "toggle-nonterminal";
  case EditKind::AddTerminal:
    return "add-terminal";
  case EditKind::RemoveTerminal:
    return "remove-terminal";
  case EditKind::RenameTerminal:
    return "rename-terminal";
  }
  return "unknown";
}

uint64_t EditRng::next() {
  // xorshift64*: deterministic, platform-stable, good enough to spread
  // edit choices; cryptographic quality is irrelevant here.
  S ^= S >> 12;
  S ^= S << 25;
  S ^= S >> 27;
  return S * 0x2545f4914f6cdd1d;
}

EditableGrammar EditableGrammar::fromGrammar(const Grammar &G) {
  EditableGrammar E;
  // Terminal id order (skipping the synthetic "$" at id 0): re-declaring
  // them in this order makes GrammarBuilder assign the same ids back.
  for (unsigned T = 1; T != G.numTerminals(); ++T)
    E.Terminals.push_back(G.name(Symbol(int32_t(T))));

  int MaxLevel = 0;
  for (unsigned T = 0; T != G.numTerminals(); ++T)
    MaxLevel = std::max(MaxLevel, G.precedenceLevel(Symbol(int32_t(T))));
  E.Levels.resize(size_t(MaxLevel));
  for (unsigned T = 0; T != G.numTerminals(); ++T) {
    Symbol S{int32_t(T)};
    int L = G.precedenceLevel(S);
    if (L <= 0)
      continue;
    PrecLevel &Lvl = E.Levels[size_t(L) - 1];
    Lvl.A = G.associativity(S);
    Lvl.Names.push_back(G.name(S));
  }

  for (unsigned P = 0; P != G.numProductions(); ++P) {
    if (P == G.augmentedProduction())
      continue;
    const Production &Prod = G.production(P);
    Rule R;
    R.Lhs = G.name(Prod.Lhs);
    for (Symbol S : Prod.Rhs)
      R.Rhs.push_back(G.name(S));
    // Reconstruct the explicit %prec: only when the stored PrecSym is not
    // the yacc default (the last terminal of the right-hand side).
    Symbol Default;
    for (auto It = Prod.Rhs.rbegin(); It != Prod.Rhs.rend(); ++It)
      if (G.isTerminal(*It)) {
        Default = *It;
        break;
      }
    if (Prod.PrecSym.valid() && Prod.PrecSym != Default)
      R.Prec = G.name(Prod.PrecSym);
    E.Rules.push_back(std::move(R));
  }

  E.StartName = G.name(G.startSymbol());
  E.ExpectSr = G.expectedShiftReduce();
  E.ExpectRr = G.expectedReduceReduce();
  return E;
}

std::optional<Grammar> EditableGrammar::build(std::string *Error) const {
  GrammarBuilder B;
  for (const std::string &T : Terminals)
    B.token(T);
  for (const PrecLevel &L : Levels) {
    // Empty levels still claim their level number, so removing one
    // terminal's declaration never renumbers the others.
    switch (L.A) {
    case Assoc::Left:
      B.left(L.Names);
      break;
    case Assoc::Right:
      B.right(L.Names);
      break;
    case Assoc::Nonassoc:
      B.nonassoc(L.Names);
      break;
    case Assoc::None:
      B.precedence(L.Names);
      break;
    }
  }
  for (const Rule &R : Rules)
    B.rule(R.Lhs, R.Rhs, R.Prec);
  B.start(StartName);
  B.expectShiftReduce(ExpectSr);
  B.expectReduceReduce(ExpectRr);
  return B.build(Error);
}

std::vector<std::string> EditableGrammar::nonterminalNames() const {
  std::vector<std::string> Out;
  for (const Rule &R : Rules)
    if (std::find(Out.begin(), Out.end(), R.Lhs) == Out.end())
      Out.push_back(R.Lhs);
  return Out;
}

bool EditableGrammar::knownName(const std::string &Name) const {
  if (std::find(Terminals.begin(), Terminals.end(), Name) != Terminals.end())
    return true;
  for (const Rule &R : Rules) {
    if (R.Lhs == Name)
      return true;
    if (std::find(R.Rhs.begin(), R.Rhs.end(), Name) != R.Rhs.end())
      return true;
  }
  return false;
}

std::string EditableGrammar::freshName(const std::string &Base) const {
  for (unsigned I = 1;; ++I) {
    std::string Candidate = Base + std::to_string(I);
    if (!knownName(Candidate) && Candidate != "$" &&
        Candidate != "$accept")
      return Candidate;
  }
}

std::optional<std::string> EditableGrammar::applyRandomEdit(EditKind K,
                                                            EditRng &Rng) {
  std::vector<std::string> Nts = nonterminalNames();
  if (Nts.empty())
    return std::nullopt;

  auto ruleIndicesOf = [&](const std::string &Nt) {
    std::vector<size_t> Idx;
    for (size_t I = 0; I != Rules.size(); ++I)
      if (Rules[I].Lhs == Nt)
        Idx.push_back(I);
    return Idx;
  };
  auto multiRuleNts = [&] {
    std::vector<std::string> Out;
    for (const std::string &Nt : Nts)
      if (ruleIndicesOf(Nt).size() >= 2)
        Out.push_back(Nt);
    return Out;
  };

  switch (K) {
  case EditKind::AddAlternative: {
    const std::string &Nt = Nts[Rng.below(unsigned(Nts.size()))];
    std::vector<std::string> Pool = Terminals;
    Pool.insert(Pool.end(), Nts.begin(), Nts.end());
    Rule R;
    R.Lhs = Nt;
    unsigned Len = Rng.below(4);
    for (unsigned I = 0; I != Len && !Pool.empty(); ++I)
      R.Rhs.push_back(Pool[Rng.below(unsigned(Pool.size()))]);
    std::vector<size_t> Idx = ruleIndicesOf(Nt);
    Rules.insert(Rules.begin() + long(Idx.back()) + 1, std::move(R));
    return "add-alternative " + Nt;
  }
  case EditKind::RemoveAlternative: {
    std::vector<std::string> Candidates = multiRuleNts();
    if (Candidates.empty())
      return std::nullopt;
    const std::string &Nt =
        Candidates[Rng.below(unsigned(Candidates.size()))];
    std::vector<size_t> Idx = ruleIndicesOf(Nt);
    Rules.erase(Rules.begin() + long(Idx[Rng.below(unsigned(Idx.size()))]));
    return "remove-alternative " + Nt;
  }
  case EditKind::ReorderAlternatives: {
    std::vector<std::string> Candidates = multiRuleNts();
    if (Candidates.empty())
      return std::nullopt;
    const std::string &Nt =
        Candidates[Rng.below(unsigned(Candidates.size()))];
    std::vector<size_t> Idx = ruleIndicesOf(Nt);
    // Rotate the alternatives by one (blocks are contiguous for parsed
    // grammars and every edit keeps them contiguous).
    Rule First = std::move(Rules[Idx.front()]);
    for (size_t I = 0; I + 1 < Idx.size(); ++I)
      Rules[Idx[I]] = std::move(Rules[Idx[I + 1]]);
    Rules[Idx.back()] = std::move(First);
    return "reorder-alternatives " + Nt;
  }
  case EditKind::RenameNonterminal: {
    const std::string &Old = Nts[Rng.below(unsigned(Nts.size()))];
    std::string Fresh = freshName(Old + "_r");
    for (Rule &R : Rules) {
      if (R.Lhs == Old)
        R.Lhs = Fresh;
      for (std::string &S : R.Rhs)
        if (S == Old)
          S = Fresh;
    }
    if (StartName == Old)
      StartName = Fresh;
    return "rename-nonterminal " + Old + " -> " + Fresh;
  }
  case EditKind::TogglePrecedence: {
    if (Terminals.empty())
      return std::nullopt;
    const std::string &T = Terminals[Rng.below(unsigned(Terminals.size()))];
    for (PrecLevel &L : Levels) {
      auto It = std::find(L.Names.begin(), L.Names.end(), T);
      if (It != L.Names.end()) {
        L.Names.erase(It); // the level slot stays, see build()
        return "toggle-precedence remove " + T;
      }
    }
    PrecLevel L;
    switch (Rng.below(3)) {
    case 0:
      L.A = Assoc::Left;
      break;
    case 1:
      L.A = Assoc::Right;
      break;
    default:
      L.A = Assoc::Nonassoc;
      break;
    }
    L.Names.push_back(T);
    Levels.push_back(std::move(L));
    return "toggle-precedence add " + T;
  }
  case EditKind::ToggleExpect: {
    ExpectSr = ExpectSr < 0 ? int(Rng.below(8)) : -1;
    return std::string("toggle-expect ") + std::to_string(ExpectSr);
  }
  case EditKind::ToggleNonterminal: {
    // Delete direction: drop one nonterminal's whole block plus every
    // alternative referencing it. A removal that strands another
    // nonterminal without alternatives fails build() and the caller
    // retries with a fresh draw.
    std::vector<std::string> Deletable;
    for (const std::string &Nt : Nts)
      if (Nt != StartName)
        Deletable.push_back(Nt);
    if (!Deletable.empty() && Rng.below(2) == 0) {
      const std::string &Nt =
          Deletable[Rng.below(unsigned(Deletable.size()))];
      std::string Detail = "remove-nonterminal " + Nt;
      Rules.erase(std::remove_if(Rules.begin(), Rules.end(),
                                 [&](const Rule &R) {
                                   return R.Lhs == Nt ||
                                          std::find(R.Rhs.begin(),
                                                    R.Rhs.end(),
                                                    Nt) != R.Rhs.end();
                                 }),
                  Rules.end());
      if (Rules.empty())
        return std::nullopt;
      return Detail;
    }
    // Add direction: a fresh nonterminal block appended after every
    // existing block (so every existing symbol id survives unchanged),
    // with at least one all-terminal alternative to keep it productive,
    // plus one trailing alternative on an existing nonterminal that
    // references the new block so it is reachable and actually grows the
    // automaton.
    std::string Fresh = freshName("nt_new");
    Rule R1;
    R1.Lhs = Fresh;
    unsigned Len = 1 + Rng.below(3);
    for (unsigned I = 0; I != Len && !Terminals.empty(); ++I)
      R1.Rhs.push_back(Terminals[Rng.below(unsigned(Terminals.size()))]);
    Rules.push_back(std::move(R1));
    if (Rng.below(2) == 0) {
      std::vector<std::string> Pool = Terminals;
      Pool.insert(Pool.end(), Nts.begin(), Nts.end());
      Rule R2;
      R2.Lhs = Fresh;
      unsigned Len2 = Rng.below(3);
      for (unsigned I = 0; I != Len2 && !Pool.empty(); ++I)
        R2.Rhs.push_back(Pool[Rng.below(unsigned(Pool.size()))]);
      Rules.push_back(std::move(R2));
    }
    const std::string &Host = Nts[Rng.below(unsigned(Nts.size()))];
    Rule Ref;
    Ref.Lhs = Host;
    if (!Terminals.empty() && Rng.below(2) == 0)
      Ref.Rhs.push_back(Terminals[Rng.below(unsigned(Terminals.size()))]);
    Ref.Rhs.push_back(Fresh);
    Rules.push_back(std::move(Ref));
    return "add-nonterminal " + Fresh + " via " + Host;
  }
  case EditKind::AddTerminal: {
    // Declared last, so every existing terminal keeps its id; the new id
    // appears only in the delta's extended range. Using it in a fresh
    // alternative makes the edit structural (states actually change), not
    // just a declaration-list change.
    std::string Fresh = freshName("tk_new");
    Terminals.push_back(Fresh);
    const std::string &Nt = Nts[Rng.below(unsigned(Nts.size()))];
    Rule R;
    R.Lhs = Nt;
    if (Rng.below(2) == 0)
      R.Rhs.push_back(Terminals[Rng.below(unsigned(Terminals.size()))]);
    R.Rhs.push_back(Fresh);
    std::vector<size_t> Idx = ruleIndicesOf(Nt);
    Rules.insert(Rules.begin() + long(Idx.back()) + 1, std::move(R));
    return "add-terminal " + Fresh + " via " + Nt;
  }
  case EditKind::RemoveTerminal: {
    if (Terminals.empty())
      return std::nullopt;
    std::string T = Terminals[Rng.below(unsigned(Terminals.size()))];
    Terminals.erase(std::find(Terminals.begin(), Terminals.end(), T));
    for (PrecLevel &L : Levels) {
      auto It = std::find(L.Names.begin(), L.Names.end(), T);
      if (It != L.Names.end())
        L.Names.erase(It);
    }
    // Every alternative mentioning the terminal goes with it; a removal
    // that strands a nonterminal without alternatives fails build() and
    // the caller retries with a fresh draw.
    Rules.erase(std::remove_if(Rules.begin(), Rules.end(),
                               [&](const Rule &R) {
                                 return R.Prec == T ||
                                        std::find(R.Rhs.begin(), R.Rhs.end(),
                                                  T) != R.Rhs.end();
                               }),
                Rules.end());
    if (Rules.empty())
      return std::nullopt;
    return "remove-terminal " + T;
  }
  case EditKind::RenameTerminal: {
    if (Terminals.empty())
      return std::nullopt;
    size_t Pick = Rng.below(unsigned(Terminals.size()));
    std::string Old = Terminals[Pick];
    std::string Fresh = freshName(Old + "_t");
    Terminals[Pick] = Fresh;
    for (PrecLevel &L : Levels)
      for (std::string &N : L.Names)
        if (N == Old)
          N = Fresh;
    for (Rule &R : Rules) {
      for (std::string &S : R.Rhs)
        if (S == Old)
          S = Fresh;
      if (R.Prec == Old)
        R.Prec = Fresh;
    }
    return "rename-terminal " + Old + " -> " + Fresh;
  }
  }
  return std::nullopt;
}

const std::vector<EditKind> &lalrcex::allEditKinds() {
  static const std::vector<EditKind> Kinds = {
      EditKind::AddAlternative,      EditKind::RemoveAlternative,
      EditKind::ReorderAlternatives, EditKind::RenameNonterminal,
      EditKind::TogglePrecedence,    EditKind::ToggleExpect,
      EditKind::ToggleNonterminal,   EditKind::AddTerminal,
      EditKind::RemoveTerminal,      EditKind::RenameTerminal,
  };
  return Kinds;
}

const std::vector<EditKind> &lalrcex::terminalEditKinds() {
  static const std::vector<EditKind> Kinds = {
      EditKind::AddTerminal,
      EditKind::RemoveTerminal,
      EditKind::RenameTerminal,
  };
  return Kinds;
}

std::optional<AppliedEdit>
lalrcex::applyRandomEdit(EditableGrammar &E, EditRng &Rng,
                         const std::vector<EditKind> &Kinds) {
  if (Kinds.empty())
    return std::nullopt;
  // Bounded retry: some kinds have no target on degenerate grammars, and
  // a structural edit can leave the start symbol unproductive (the
  // automaton requires a productive start). Every retry draws fresh
  // randomness, so the stream stays deterministic per seed.
  for (unsigned Attempt = 0; Attempt != 24; ++Attempt) {
    EditableGrammar Candidate = E;
    EditKind K = Kinds[Rng.below(unsigned(Kinds.size()))];
    std::optional<std::string> Detail = Candidate.applyRandomEdit(K, Rng);
    if (!Detail)
      continue;
    std::optional<Grammar> G = Candidate.build();
    if (!G)
      continue;
    GrammarAnalysis A(*G);
    if (!A.isProductive(G->startSymbol()))
      continue;
    E = std::move(Candidate);
    return AppliedEdit{K, std::move(*Detail)};
  }
  return std::nullopt;
}
