//===- grammar/Grammar.h - Context-free grammar representation -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable context-free grammar with yacc-style precedence declarations.
///
/// A Grammar is produced by GrammarBuilder (programmatic API) or
/// parseGrammarText (yacc-like text format). The grammar is augmented on
/// construction: a fresh start symbol S' with production S' -> S is added,
/// and terminal 0 is the end-of-input marker "$".
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMAR_H
#define LALRCEX_GRAMMAR_GRAMMAR_H

#include "grammar/Symbol.h"

#include <cassert>
#include <string>
#include <vector>

namespace lalrcex {

/// Operator associativity for precedence-based conflict resolution.
enum class Assoc { None, Left, Right, Nonassoc };

/// One production A -> X1 X2 ... Xn. An empty Rhs denotes an epsilon
/// production.
struct Production {
  Symbol Lhs;
  std::vector<Symbol> Rhs;
  /// Terminal supplying this production's precedence (from %prec or the
  /// last terminal of Rhs); invalid if the production has no precedence.
  Symbol PrecSym;
  /// Position of this production in declaration order.
  unsigned Index = 0;

  size_t length() const { return Rhs.size(); }
};

/// An immutable augmented context-free grammar.
class Grammar {
public:
  /// Total number of symbols (terminals followed by nonterminals).
  unsigned numSymbols() const { return unsigned(Names.size()); }
  unsigned numTerminals() const { return NumTerminals; }
  unsigned numNonterminals() const { return numSymbols() - NumTerminals; }

  bool isTerminal(Symbol S) const {
    assert(S.valid() && "invalid symbol");
    return unsigned(S.id()) < NumTerminals;
  }
  bool isNonterminal(Symbol S) const { return !isTerminal(S); }

  /// The end-of-input terminal "$".
  Symbol eof() const { return Symbol(0); }
  /// The user-declared start symbol.
  Symbol startSymbol() const { return Start; }
  /// The synthetic augmented start symbol S'.
  Symbol augmentedStart() const { return AugmentedStart; }
  /// The index of the augmented production S' -> S.
  unsigned augmentedProduction() const { return AugmentedProd; }

  unsigned numProductions() const { return unsigned(Productions.size()); }
  const Production &production(unsigned Index) const {
    assert(Index < Productions.size() && "production index out of range");
    return Productions[Index];
  }

  /// Indices of the productions whose left-hand side is \p Nonterminal.
  const std::vector<unsigned> &productionsOf(Symbol Nonterminal) const {
    assert(isNonterminal(Nonterminal) && "expected a nonterminal");
    return ProdsOf[Nonterminal.id() - NumTerminals];
  }

  const std::string &name(Symbol S) const {
    assert(S.valid() && unsigned(S.id()) < Names.size() && "bad symbol");
    return Names[S.id()];
  }

  /// Looks up a symbol by name. \returns an invalid Symbol if absent.
  Symbol symbolByName(const std::string &Name) const;

  /// Precedence level of terminal \p T; 0 means "no precedence declared".
  /// Higher levels bind tighter.
  int precedenceLevel(Symbol T) const {
    assert(isTerminal(T) && "expected a terminal");
    return PrecLevel[T.id()];
  }
  Assoc associativity(Symbol T) const {
    assert(isTerminal(T) && "expected a terminal");
    return PrecAssoc[T.id()];
  }

  /// Precedence level of a production (via its PrecSym); 0 if none.
  int productionPrecedence(unsigned ProdIndex) const {
    const Production &P = production(ProdIndex);
    return P.PrecSym.valid() ? precedenceLevel(P.PrecSym) : 0;
  }

  /// Renders a production as "lhs ::= x1 x2 ...". If \p Dot is
  /// non-negative, a bullet is placed before the Dot-th right-hand-side
  /// symbol (Dot == length places it at the end).
  std::string productionString(unsigned ProdIndex, int Dot = -1) const;

  /// Renders a sequence of symbols separated by spaces.
  std::string symbolsString(const std::vector<Symbol> &Syms) const;

  /// Number of shift/reduce conflicts the grammar author declared as
  /// expected (%expect), or -1 when undeclared.
  int expectedShiftReduce() const { return ExpectShiftReduce; }
  /// Number of reduce/reduce conflicts declared expected (%expect-rr),
  /// or -1 when undeclared.
  int expectedReduceReduce() const { return ExpectReduceReduce; }

private:
  friend class GrammarBuilder;
  Grammar() = default;

  std::vector<std::string> Names;
  unsigned NumTerminals = 0;
  std::vector<Production> Productions;
  std::vector<std::vector<unsigned>> ProdsOf;
  std::vector<int> PrecLevel;
  std::vector<Assoc> PrecAssoc;
  Symbol Start;
  Symbol AugmentedStart;
  unsigned AugmentedProd = 0;
  int ExpectShiftReduce = -1;
  int ExpectReduceReduce = -1;
};

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMAR_H
