//===- grammar/Grammar.cpp ------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/Grammar.h"

using namespace lalrcex;

Symbol Grammar::symbolByName(const std::string &Name) const {
  for (unsigned I = 0, E = numSymbols(); I != E; ++I)
    if (Names[I] == Name)
      return Symbol(int32_t(I));
  return Symbol();
}

std::string Grammar::productionString(unsigned ProdIndex, int Dot) const {
  const Production &P = production(ProdIndex);
  std::string Out = name(P.Lhs) + " ::=";
  for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
    if (Dot >= 0 && size_t(Dot) == I)
      Out += " \xE2\x80\xA2"; // bullet
    Out += " " + name(P.Rhs[I]);
  }
  if (Dot >= 0 && size_t(Dot) == P.Rhs.size())
    Out += " \xE2\x80\xA2";
  if (P.Rhs.empty() && Dot < 0)
    Out += " /* empty */";
  return Out;
}

std::string Grammar::symbolsString(const std::vector<Symbol> &Syms) const {
  std::string Out;
  for (size_t I = 0, E = Syms.size(); I != E; ++I) {
    if (I != 0)
      Out += " ";
    Out += name(Syms[I]);
  }
  return Out;
}
