//===- grammar/GrammarDelta.cpp - Structural diff of two grammars ---------===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarDelta.h"

#include "grammar/SubGrammar.h"

#include <algorithm>

namespace lalrcex {

namespace {

/// True when old production \p P and new production \p Q are the same
/// rule under \p SymbolMap: mapped left-hand sides and right-hand sides
/// agree symbol for symbol. Precedence is deliberately ignored — it
/// affects conflict *resolution*, which the always-cold ParseTable
/// rebuild handles, never automaton structure or report content.
bool sameProduction(const Grammar &Old, unsigned P, const Grammar &New,
                    unsigned Q, const std::vector<int32_t> &SymbolMap) {
  const Production &A = Old.production(P);
  const Production &B = New.production(Q);
  if (SymbolMap[A.Lhs.id()] != B.Lhs.id())
    return false;
  if (A.Rhs.size() != B.Rhs.size())
    return false;
  for (size_t I = 0; I != A.Rhs.size(); ++I)
    if (SymbolMap[A.Rhs[I].id()] != B.Rhs[I].id())
      return false;
  return true;
}

/// Longest common subsequence of two production-index lists under
/// sameProduction equality; emits the matched (old, new) pairs in
/// ascending order. Blocks are small (alternatives of one nonterminal),
/// so the quadratic table is fine.
void lcsMatch(const Grammar &Old, const std::vector<unsigned> &A,
              const Grammar &New, const std::vector<unsigned> &B,
              const std::vector<int32_t> &SymbolMap,
              std::vector<std::pair<unsigned, unsigned>> &Pairs) {
  size_t N = A.size(), M = B.size();
  std::vector<uint32_t> L((N + 1) * (M + 1), 0);
  auto At = [&](size_t I, size_t J) -> uint32_t & { return L[I * (M + 1) + J]; };
  for (size_t I = N; I-- > 0;)
    for (size_t J = M; J-- > 0;) {
      if (sameProduction(Old, A[I], New, B[J], SymbolMap))
        At(I, J) = At(I + 1, J + 1) + 1;
      else
        At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
    }
  size_t I = 0, J = 0;
  while (I < N && J < M) {
    if (sameProduction(Old, A[I], New, B[J], SymbolMap)) {
      Pairs.emplace_back(A[I], B[J]);
      ++I, ++J;
    } else if (At(I + 1, J) >= At(I, J + 1)) {
      ++I;
    } else {
      ++J;
    }
  }
}

/// Marks, for every nonterminal of \p G, whether its slice reaches some
/// edited nonterminal.
void computeAffected(const Grammar &G, const SubGrammarIndex &Slices,
                     const std::vector<bool> &Edited,
                     std::vector<bool> &Affected) {
  std::vector<Symbol> EditedNts;
  for (unsigned Id = G.numTerminals(); Id != G.numSymbols(); ++Id)
    if (Edited[Id])
      EditedNts.push_back(Symbol(Id));
  for (unsigned Id = G.numTerminals(); Id != G.numSymbols(); ++Id)
    for (Symbol E : EditedNts)
      if (Slices.reaches(Symbol(Id), E)) {
        Affected[Id] = true;
        break;
      }
}

} // namespace

bool GrammarDelta::translateTerminalSet(const IndexSet &OldSet,
                                        IndexSet &Out) const {
  IndexSet Translated(NewNumTerminals);
  bool Ok = true;
  OldSet.forEach([&](unsigned T) {
    if (!Ok)
      return;
    int32_t NT = T < SymbolMap.size() ? SymbolMap[T] : -1;
    if (NT < 0 || unsigned(NT) >= NewNumTerminals) {
      Ok = false;
      return;
    }
    Translated.insert(unsigned(NT));
  });
  if (Ok)
    Out = std::move(Translated);
  return Ok;
}

GrammarDelta computeGrammarDelta(const Grammar &Old,
                                 const SubGrammarIndex &OldSlices,
                                 const Grammar &New,
                                 const SubGrammarIndex &NewSlices) {
  GrammarDelta D;
  D.SymbolMap.assign(Old.numSymbols(), -1);
  D.InvSymbolMap.assign(New.numSymbols(), -1);
  D.ProdMap.assign(Old.numProductions(), -1);
  D.InvProdMap.assign(New.numProductions(), -1);
  D.EditedOld.assign(Old.numSymbols(), false);
  D.EditedNew.assign(New.numSymbols(), false);
  D.AffectedOld.assign(Old.numSymbols(), false);
  D.AffectedNew.assign(New.numSymbols(), false);
  D.ProdAffectedOld.assign(Old.numProductions(), false);
  D.ProdAffectedNew.assign(New.numProductions(), false);

  D.OldNumTerminals = Old.numTerminals();
  D.NewNumTerminals = New.numTerminals();
  D.TermPrecChangedOld.assign(Old.numTerminals(), false);
  D.TermPrecChangedNew.assign(New.numTerminals(), false);
  D.ProdPrecChangedOld.assign(Old.numProductions(), false);
  D.ProdPrecChangedNew.assign(New.numProductions(), false);

  // Terminals: by name, then leftover pairs positionally (renames) — the
  // same scheme as nonterminals below. "$" (eof) is id 0 in every
  // grammar and always pairs with itself. Terminal ids index lookahead
  // bitsets, so consumers translate bitsets through this map; that
  // translation preserves the token order of per-state conflict runs
  // only when the map is monotone, checked right after matching.
  D.SymbolMap[0] = 0;
  D.InvSymbolMap[0] = 0;
  for (unsigned T = 1; T < Old.numTerminals(); ++T) {
    Symbol Cand = New.symbolByName(Old.name(Symbol(int32_t(T))));
    if (Cand.valid() && New.isTerminal(Cand) && D.InvSymbolMap[Cand.id()] < 0) {
      D.SymbolMap[T] = Cand.id();
      D.InvSymbolMap[Cand.id()] = int32_t(T);
    }
  }
  {
    std::vector<int32_t> OldFree, NewFree;
    for (unsigned T = 1; T < Old.numTerminals(); ++T)
      if (D.SymbolMap[T] < 0)
        OldFree.push_back(int32_t(T));
    for (unsigned T = 1; T < New.numTerminals(); ++T)
      if (D.InvSymbolMap[T] < 0)
        NewFree.push_back(int32_t(T));
    for (size_t I = 0; I != OldFree.size() && I != NewFree.size(); ++I) {
      D.SymbolMap[OldFree[I]] = NewFree[I];
      D.InvSymbolMap[NewFree[I]] = OldFree[I];
    }
  }
  {
    int32_t LastT = -1;
    for (unsigned T = 0; T != Old.numTerminals(); ++T) {
      if (D.SymbolMap[T] < 0)
        continue;
      if (D.SymbolMap[T] <= LastT) {
        D.InvalidReason = "terminal map not monotone";
        return D;
      }
      LastT = D.SymbolMap[T];
    }
  }

  // Identity test plus the precedence-change flags the table patch gates
  // on: an unmatched terminal counts as changed on its side.
  D.TermMapIdentity = Old.numTerminals() == New.numTerminals();
  for (unsigned T = 0; T != Old.numTerminals(); ++T) {
    int32_t NT = D.SymbolMap[T];
    if (NT < 0) {
      D.TermPrecChangedOld[T] = true;
      D.TermMapIdentity = false;
      continue;
    }
    if (NT != int32_t(T))
      D.TermMapIdentity = false;
    Symbol OldT{int32_t(T)}, NewT{NT};
    if (Old.precedenceLevel(OldT) != New.precedenceLevel(NewT) ||
        Old.associativity(OldT) != New.associativity(NewT)) {
      D.TermPrecChangedOld[T] = true;
      D.TermPrecChangedNew[NT] = true;
    }
  }
  for (unsigned T = 0; T != New.numTerminals(); ++T)
    if (D.InvSymbolMap[T] < 0)
      D.TermPrecChangedNew[T] = true;

  // Nonterminals: by name, then leftover pairs positionally (renames).
  // The augmented start symbols always pair with each other: both are
  // synthetic, and the automaton patch needs state 0's kernel to map.
  D.SymbolMap[Old.augmentedStart().id()] = New.augmentedStart().id();
  D.InvSymbolMap[New.augmentedStart().id()] = Old.augmentedStart().id();
  for (unsigned Id = Old.numTerminals(); Id != Old.numSymbols(); ++Id) {
    if (int32_t(Id) == Old.augmentedStart().id())
      continue;
    Symbol Cand = New.symbolByName(Old.name(Symbol(Id)));
    if (Cand.valid() && New.isNonterminal(Cand) &&
        Cand != New.augmentedStart() && D.InvSymbolMap[Cand.id()] < 0) {
      D.SymbolMap[Id] = Cand.id();
      D.InvSymbolMap[Cand.id()] = int32_t(Id);
    }
  }
  {
    std::vector<int32_t> OldFree, NewFree;
    for (unsigned Id = Old.numTerminals(); Id != Old.numSymbols(); ++Id)
      if (D.SymbolMap[Id] < 0)
        OldFree.push_back(int32_t(Id));
    for (unsigned Id = New.numTerminals(); Id != New.numSymbols(); ++Id)
      if (D.InvSymbolMap[Id] < 0)
        NewFree.push_back(int32_t(Id));
    for (size_t I = 0; I != OldFree.size() && I != NewFree.size(); ++I) {
      D.SymbolMap[OldFree[I]] = NewFree[I];
      D.InvSymbolMap[NewFree[I]] = OldFree[I];
    }
    // A nonterminal with no partner is edited by definition: its block
    // appeared or disappeared wholesale.
    for (size_t I = NewFree.size(); I < OldFree.size(); ++I)
      D.EditedOld[OldFree[I]] = true;
    for (size_t I = OldFree.size(); I < NewFree.size(); ++I)
      D.EditedNew[NewFree[I]] = true;
  }

  // Production blocks: positional match is "unedited", otherwise mark
  // both sides edited and salvage what an LCS still maps.
  for (unsigned Id = Old.numTerminals(); Id != Old.numSymbols(); ++Id) {
    if (D.SymbolMap[Id] < 0)
      continue;
    Symbol OldNt{int32_t(Id)}, NewNt{D.SymbolMap[Id]};
    const std::vector<unsigned> &A = Old.productionsOf(OldNt);
    const std::vector<unsigned> &B = New.productionsOf(NewNt);
    bool Positional = A.size() == B.size();
    for (size_t I = 0; Positional && I != A.size(); ++I)
      Positional = sameProduction(Old, A[I], New, B[I], D.SymbolMap);
    if (Positional) {
      for (size_t I = 0; I != A.size(); ++I) {
        D.ProdMap[A[I]] = int32_t(B[I]);
        D.InvProdMap[B[I]] = int32_t(A[I]);
      }
      continue;
    }
    D.EditedOld[Id] = true;
    D.EditedNew[NewNt.id()] = true;
    std::vector<std::pair<unsigned, unsigned>> Pairs;
    lcsMatch(Old, A, New, B, D.SymbolMap, Pairs);
    for (auto [P, Q] : Pairs) {
      D.ProdMap[P] = int32_t(Q);
      D.InvProdMap[Q] = int32_t(P);
    }
  }

  // Item vectors and kernels are ordered by production index; splicing
  // them unsorted is only sound when the map preserves that order.
  int32_t Last = -1;
  for (unsigned P = 0; P != Old.numProductions(); ++P) {
    if (D.ProdMap[P] < 0)
      continue;
    if (D.ProdMap[P] <= Last) {
      D.InvalidReason = "production map not monotone";
      D.ProdMap.assign(Old.numProductions(), -1);
      D.InvProdMap.assign(New.numProductions(), -1);
      return D;
    }
    Last = D.ProdMap[P];
  }

  // Effective %prec of surviving productions, compared through the map:
  // productionPrecedence is exactly the resolution input ParseTable
  // consults, so comparing its value across the edit is neither over-
  // nor under-approximate. Unmapped productions count as changed.
  for (unsigned P = 0; P != Old.numProductions(); ++P) {
    int32_t Q = D.ProdMap[P];
    if (Q < 0) {
      D.ProdPrecChangedOld[P] = true;
      continue;
    }
    if (Old.productionPrecedence(P) != New.productionPrecedence(unsigned(Q))) {
      D.ProdPrecChangedOld[P] = true;
      D.ProdPrecChangedNew[Q] = true;
    }
  }
  for (unsigned Q = 0; Q != New.numProductions(); ++Q)
    if (D.InvProdMap[Q] < 0)
      D.ProdPrecChangedNew[Q] = true;

  computeAffected(Old, OldSlices, D.EditedOld, D.AffectedOld);
  computeAffected(New, NewSlices, D.EditedNew, D.AffectedNew);
  for (unsigned P = 0; P != Old.numProductions(); ++P)
    D.ProdAffectedOld[P] = D.AffectedOld[Old.production(P).Lhs.id()];
  for (unsigned P = 0; P != New.numProductions(); ++P)
    D.ProdAffectedNew[P] = D.AffectedNew[New.production(P).Lhs.id()];

  D.Valid = true;
  return D;
}

} // namespace lalrcex
