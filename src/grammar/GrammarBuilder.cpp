//===- grammar/GrammarBuilder.cpp -----------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarBuilder.h"

#include <algorithm>
#include <unordered_set>

using namespace lalrcex;

GrammarBuilder &GrammarBuilder::token(const std::string &Name) {
  DeclaredTokens.push_back(Name);
  return *this;
}

GrammarBuilder &GrammarBuilder::tokens(const std::vector<std::string> &Names) {
  for (const std::string &N : Names)
    token(N);
  return *this;
}

GrammarBuilder &GrammarBuilder::rule(const std::string &Lhs,
                                     const std::vector<std::string> &Rhs,
                                     const std::string &PrecName) {
  Rules.push_back(RawRule{Lhs, Rhs, PrecName});
  return *this;
}

GrammarBuilder &
GrammarBuilder::declarePrecLevel(const std::vector<std::string> &Names,
                                 Assoc A) {
  int Level = NextPrecLevel++;
  for (const std::string &N : Names)
    Precs.push_back(RawPrec{N, A, Level});
  return *this;
}

GrammarBuilder &GrammarBuilder::left(const std::vector<std::string> &Names) {
  return declarePrecLevel(Names, Assoc::Left);
}

GrammarBuilder &GrammarBuilder::right(const std::vector<std::string> &Names) {
  return declarePrecLevel(Names, Assoc::Right);
}

GrammarBuilder &
GrammarBuilder::nonassoc(const std::vector<std::string> &Names) {
  return declarePrecLevel(Names, Assoc::Nonassoc);
}

GrammarBuilder &
GrammarBuilder::precedence(const std::vector<std::string> &Names) {
  return declarePrecLevel(Names, Assoc::None);
}

GrammarBuilder &GrammarBuilder::start(const std::string &Name) {
  StartName = Name;
  return *this;
}

std::optional<Grammar>
GrammarBuilder::build(std::string *ErrorMessage) const {
  auto Fail = [ErrorMessage](const std::string &Msg) -> std::optional<Grammar> {
    if (ErrorMessage)
      *ErrorMessage = Msg;
    return std::nullopt;
  };

  if (Rules.empty())
    return Fail("grammar has no rules");

  // Classify names: rule left-hand sides are nonterminals; everything else
  // mentioned is a terminal.
  std::unordered_set<std::string> NonterminalNames;
  for (const RawRule &R : Rules)
    NonterminalNames.insert(R.Lhs);

  for (const std::string &T : DeclaredTokens)
    if (NonterminalNames.count(T))
      return Fail("'" + T + "' is declared %token but has rules");

  std::unordered_set<std::string> TokenNames(DeclaredTokens.begin(),
                                             DeclaredTokens.end());
  // Precedence declarations implicitly declare their tokens (as in yacc).
  for (const RawPrec &P : Precs)
    TokenNames.insert(P.Name);
  // Collect terminals in order of first appearance: declared tokens first,
  // then implicit terminals from rule bodies and precedence declarations.
  std::vector<std::string> TerminalOrder;
  std::unordered_set<std::string> SeenTerminal;
  auto noteTerminal = [&](const std::string &Name) -> bool {
    if (NonterminalNames.count(Name))
      return true;
    if (SeenTerminal.insert(Name).second)
      TerminalOrder.push_back(Name);
    return !StrictMode || TokenNames.count(Name) > 0;
  };

  for (const std::string &T : DeclaredTokens)
    noteTerminal(T);
  for (const RawPrec &P : Precs)
    if (!NonterminalNames.count(P.Name))
      noteTerminal(P.Name);
  for (const RawRule &R : Rules) {
    for (const std::string &S : R.Rhs)
      if (!NonterminalNames.count(S) && !noteTerminal(S))
        return Fail("undeclared symbol '" + S + "' (strict mode)");
    if (!R.PrecName.empty() && !NonterminalNames.count(R.PrecName) &&
        !noteTerminal(R.PrecName))
      return Fail("undeclared %prec symbol '" + R.PrecName + "'");
  }

  for (const RawPrec &P : Precs)
    if (NonterminalNames.count(P.Name))
      return Fail("precedence declared for nonterminal '" + P.Name + "'");

  std::string StartNm = StartName.empty() ? Rules.front().Lhs : StartName;
  if (!NonterminalNames.count(StartNm))
    return Fail("start symbol '" + StartNm + "' has no rules");

  // Nonterminals in order of first rule appearance, start symbol's
  // declaration order preserved.
  std::vector<std::string> NonterminalOrder;
  std::unordered_set<std::string> SeenNonterminal;
  for (const RawRule &R : Rules)
    if (SeenNonterminal.insert(R.Lhs).second)
      NonterminalOrder.push_back(R.Lhs);

  Grammar G;
  G.NumTerminals = unsigned(TerminalOrder.size()) + 1; // +1 for "$"
  G.Names.reserve(G.NumTerminals + NonterminalOrder.size() + 1);
  G.Names.push_back("$");
  for (const std::string &T : TerminalOrder)
    G.Names.push_back(T);
  std::unordered_map<std::string, Symbol> Ids;
  for (unsigned I = 0; I != G.NumTerminals; ++I)
    Ids[G.Names[I]] = Symbol(int32_t(I));
  for (const std::string &N : NonterminalOrder) {
    Ids[N] = Symbol(int32_t(G.Names.size()));
    G.Names.push_back(N);
  }
  // Synthetic augmented start symbol, named to avoid collisions.
  G.AugmentedStart = Symbol(int32_t(G.Names.size()));
  G.Names.push_back("$accept");

  G.Start = Ids[StartNm];

  // Precedence tables (terminals only).
  G.PrecLevel.assign(G.NumTerminals, 0);
  G.PrecAssoc.assign(G.NumTerminals, Assoc::None);
  for (const RawPrec &P : Precs) {
    Symbol S = Ids[P.Name];
    if (G.PrecLevel[S.id()] != 0)
      return Fail("precedence of '" + P.Name + "' declared twice");
    G.PrecLevel[S.id()] = P.Level;
    G.PrecAssoc[S.id()] = P.A;
  }

  // Productions; the augmented production S' -> S comes first so that its
  // index is stable (index 0).
  G.ProdsOf.assign(G.numSymbols() - G.NumTerminals, {});
  auto addProduction = [&G](Symbol Lhs, std::vector<Symbol> Rhs,
                            Symbol PrecSym) {
    Production P;
    P.Lhs = Lhs;
    P.Rhs = std::move(Rhs);
    P.PrecSym = PrecSym;
    P.Index = unsigned(G.Productions.size());
    G.ProdsOf[Lhs.id() - G.NumTerminals].push_back(P.Index);
    G.Productions.push_back(std::move(P));
  };

  addProduction(G.AugmentedStart, {G.Start}, Symbol());
  G.AugmentedProd = 0;
  G.ExpectShiftReduce = ExpectSr;
  G.ExpectReduceReduce = ExpectRr;

  for (const RawRule &R : Rules) {
    std::vector<Symbol> Rhs;
    Rhs.reserve(R.Rhs.size());
    for (const std::string &S : R.Rhs)
      Rhs.push_back(Ids[S]);
    Symbol PrecSym;
    if (!R.PrecName.empty()) {
      PrecSym = Ids[R.PrecName];
      if (G.isNonterminal(PrecSym))
        return Fail("%prec symbol '" + R.PrecName + "' is a nonterminal");
    } else {
      // Yacc default: the last terminal of the right-hand side.
      for (auto It = Rhs.rbegin(), E = Rhs.rend(); It != E; ++It) {
        if (G.isTerminal(*It)) {
          PrecSym = *It;
          break;
        }
      }
    }
    addProduction(Ids[R.Lhs], std::move(Rhs), PrecSym);
  }

  return G;
}
