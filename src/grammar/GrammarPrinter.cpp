//===- grammar/GrammarPrinter.cpp ------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarPrinter.h"

#include <algorithm>
#include <map>

using namespace lalrcex;

std::string lalrcex::printGrammarText(const Grammar &G) {
  std::string Out;

  // %token for every terminal except "$" (quoted names carry their own
  // quoting and need no declaration, but listing them is harmless and
  // keeps the output explicit). Precedence-declared terminals are
  // declared by their precedence lines instead.
  std::string Tokens;
  for (unsigned T = 1; T != G.numTerminals(); ++T) {
    Symbol S{int32_t(T)};
    if (G.precedenceLevel(S) != 0)
      continue;
    Tokens += " " + G.name(S);
  }
  if (!Tokens.empty())
    Out += "%token" + Tokens + "\n";

  // Precedence levels in increasing (later = tighter) order.
  std::map<int, std::pair<Assoc, std::string>> Levels;
  for (unsigned T = 1; T != G.numTerminals(); ++T) {
    Symbol S{int32_t(T)};
    int L = G.precedenceLevel(S);
    if (L == 0)
      continue;
    auto &Entry = Levels[L];
    Entry.first = G.associativity(S);
    Entry.second += " " + G.name(S);
  }
  for (const auto &[Level, Decl] : Levels) {
    (void)Level;
    const char *Dir = "%precedence";
    switch (Decl.first) {
    case Assoc::Left:
      Dir = "%left";
      break;
    case Assoc::Right:
      Dir = "%right";
      break;
    case Assoc::Nonassoc:
      Dir = "%nonassoc";
      break;
    case Assoc::None:
      Dir = "%precedence";
      break;
    }
    Out += std::string(Dir) + Decl.second + "\n";
  }

  if (G.expectedShiftReduce() >= 0)
    Out += "%expect " + std::to_string(G.expectedShiftReduce()) + "\n";
  if (G.expectedReduceReduce() >= 0)
    Out += "%expect-rr " + std::to_string(G.expectedReduceReduce()) + "\n";
  Out += "%start " + G.name(G.startSymbol()) + "\n%%\n";

  // Rules grouped by nonterminal, in first-production order.
  std::vector<Symbol> Order;
  for (unsigned P = 0; P != G.numProductions(); ++P) {
    if (P == G.augmentedProduction())
      continue;
    Symbol Lhs = G.production(P).Lhs;
    if (std::find(Order.begin(), Order.end(), Lhs) == Order.end())
      Order.push_back(Lhs);
  }

  for (Symbol Lhs : Order) {
    Out += G.name(Lhs) + " :";
    bool FirstAlt = true;
    for (unsigned P : G.productionsOf(Lhs)) {
      if (!FirstAlt)
        Out += "\n  |";
      FirstAlt = false;
      const Production &Prod = G.production(P);
      for (Symbol S : Prod.Rhs)
        Out += " " + G.name(S);
      // Emit %prec when it differs from the default (last terminal).
      Symbol DefaultPrec;
      for (auto It = Prod.Rhs.rbegin(); It != Prod.Rhs.rend(); ++It) {
        if (G.isTerminal(*It)) {
          DefaultPrec = *It;
          break;
        }
      }
      if (Prod.PrecSym.valid() && Prod.PrecSym != DefaultPrec)
        Out += " %prec " + G.name(Prod.PrecSym);
    }
    Out += " ;\n";
  }
  return Out;
}
