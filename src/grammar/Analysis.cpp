//===- grammar/Analysis.cpp -----------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/Analysis.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>

using namespace lalrcex;

GrammarAnalysis::GrammarAnalysis(const Grammar &G, MetricsRegistry *Metrics,
                                 TraceRecorder *Trace)
    : G(G), Pool(G.numTerminals()) {
  ScopedTimer Timer(Metrics, metric::TimeAnalysisNs);
  TraceSpan Span(Trace, "analysis");
  unsigned NullablePasses = computeNullable();
  unsigned FirstPasses = computeFirst();
  unsigned FollowPasses = computeFollow();
  unsigned MinYieldPasses = computeMinYield();
  computeReachable();
  buildPool();
  if (Metrics) {
    Metrics->add(metric::AnalysisRuns);
    Metrics->add(metric::AnalysisNullablePasses, NullablePasses);
    Metrics->add(metric::AnalysisFirstPasses, FirstPasses);
    Metrics->add(metric::AnalysisFollowPasses, FollowPasses);
    Metrics->add(metric::AnalysisMinYieldPasses, MinYieldPasses);
  }
}

void GrammarAnalysis::buildPool() {
  // Intern every FIRST set and every production-suffix FIRST set once, so
  // the searches' hot queries become table lookups and pooled-id unions.
  FirstIds.reserve(G.numSymbols());
  for (unsigned S = 0; S != G.numSymbols(); ++S)
    FirstIds.push_back(Pool.intern(First[S]));

  SuffixOffset.assign(G.numProductions(), 0);
  unsigned Total = 0;
  for (unsigned P = 0; P != G.numProductions(); ++P) {
    SuffixOffset[P] = Total;
    Total += unsigned(G.production(P).Rhs.size()) + 1;
  }
  SuffixFirstIds.assign(Total, Pool.emptySet());
  SuffixNullableBits.assign(Total, false);
  for (unsigned P = 0; P != G.numProductions(); ++P) {
    const std::vector<Symbol> &Rhs = G.production(P).Rhs;
    // Fill each row back-to-front so suffix (dot) extends suffix (dot+1)
    // with one cached union.
    unsigned Row = SuffixOffset[P];
    unsigned Len = unsigned(Rhs.size());
    SuffixNullableBits[Row + Len] = true;
    for (unsigned Dot = Len; Dot-- > 0;) {
      TerminalSetPool::SetId Rest = SuffixFirstIds[Row + Dot + 1];
      bool SymNullable = Nullable[Rhs[Dot].id()];
      SuffixFirstIds[Row + Dot] =
          SymNullable ? Pool.unionSets(FirstIds[Rhs[Dot].id()], Rest)
                      : FirstIds[Rhs[Dot].id()];
      SuffixNullableBits[Row + Dot] =
          SymNullable && SuffixNullableBits[Row + Dot + 1];
    }
  }
  Pool.freeze();
}

unsigned GrammarAnalysis::computeNullable() {
  Nullable.assign(G.numSymbols(), false);
  unsigned Passes = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (unsigned P = 0, E = G.numProductions(); P != E; ++P) {
      const Production &Prod = G.production(P);
      if (Nullable[Prod.Lhs.id()])
        continue;
      bool AllNullable = true;
      for (Symbol S : Prod.Rhs) {
        if (!Nullable[S.id()]) {
          AllNullable = false;
          break;
        }
      }
      if (AllNullable) {
        Nullable[Prod.Lhs.id()] = true;
        Changed = true;
      }
    }
  }
  return Passes;
}

unsigned GrammarAnalysis::computeFirst() {
  First.assign(G.numSymbols(), IndexSet(G.numTerminals()));
  for (unsigned T = 0; T != G.numTerminals(); ++T)
    First[T].insert(T);

  unsigned Passes = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (unsigned P = 0, E = G.numProductions(); P != E; ++P) {
      const Production &Prod = G.production(P);
      IndexSet &Lhs = First[Prod.Lhs.id()];
      for (Symbol S : Prod.Rhs) {
        Changed |= Lhs.unionWith(First[S.id()]);
        if (!Nullable[S.id()])
          break;
      }
    }
  }
  return Passes;
}

unsigned GrammarAnalysis::computeFollow() {
  Follow.assign(G.numSymbols(), IndexSet(G.numTerminals()));
  Follow[G.augmentedStart().id()].insert(G.eof().id());
  unsigned Passes = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (unsigned P = 0, E = G.numProductions(); P != E; ++P) {
      const Production &Prod = G.production(P);
      for (size_t I = 0; I != Prod.Rhs.size(); ++I) {
        Symbol S = Prod.Rhs[I];
        if (!G.isNonterminal(S))
          continue;
        IndexSet F =
            firstOfSequence(Prod.Rhs, I + 1, &Follow[Prod.Lhs.id()]);
        Changed |= Follow[S.id()].unionWith(F);
      }
    }
  }
  return Passes;
}

unsigned GrammarAnalysis::computeMinYield() {
  MinYield.assign(G.numSymbols(), Infinite);
  MinProdYield.assign(G.numProductions(), Infinite);
  MinProd.assign(G.numNonterminals(), Infinite);
  for (unsigned T = 0; T != G.numTerminals(); ++T)
    MinYield[T] = 1;

  unsigned Passes = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (unsigned P = 0, E = G.numProductions(); P != E; ++P) {
      const Production &Prod = G.production(P);
      unsigned Sum = 0;
      bool Known = true;
      for (Symbol S : Prod.Rhs) {
        if (MinYield[S.id()] == Infinite) {
          Known = false;
          break;
        }
        Sum += MinYield[S.id()];
      }
      if (!Known)
        continue;
      if (Sum < MinProdYield[P]) {
        MinProdYield[P] = Sum;
        Changed = true;
      }
      if (Sum < MinYield[Prod.Lhs.id()]) {
        MinYield[Prod.Lhs.id()] = Sum;
        MinProd[Prod.Lhs.id() - G.numTerminals()] = P;
        Changed = true;
      }
    }
  }
  return Passes;
}

void GrammarAnalysis::computeReachable() {
  Reachable.assign(G.numSymbols(), false);
  Reachable[G.augmentedStart().id()] = true;
  Reachable[G.eof().id()] = true;
  std::vector<Symbol> Work = {G.augmentedStart()};
  while (!Work.empty()) {
    Symbol S = Work.back();
    Work.pop_back();
    if (G.isTerminal(S))
      continue;
    for (unsigned P : G.productionsOf(S)) {
      for (Symbol R : G.production(P).Rhs) {
        if (!Reachable[R.id()]) {
          Reachable[R.id()] = true;
          Work.push_back(R);
        }
      }
    }
  }
}

bool GrammarAnalysis::sequenceNullable(const std::vector<Symbol> &Syms,
                                       size_t From) const {
  for (size_t I = From, E = Syms.size(); I != E; ++I)
    if (!Nullable[Syms[I].id()])
      return false;
  return true;
}

IndexSet GrammarAnalysis::firstOfSequence(const std::vector<Symbol> &Syms,
                                          size_t From,
                                          const IndexSet *Tail) const {
  IndexSet Out(G.numTerminals());
  for (size_t I = From, E = Syms.size(); I != E; ++I) {
    Out.unionWith(First[Syms[I].id()]);
    if (!Nullable[Syms[I].id()])
      return Out;
  }
  if (Tail)
    Out.unionWith(*Tail);
  return Out;
}

bool GrammarAnalysis::sequenceCanBeginWith(const std::vector<Symbol> &Syms,
                                           size_t From, Symbol T,
                                           const IndexSet *Tail) const {
  assert(G.isTerminal(T) && "expected a terminal");
  for (size_t I = From, E = Syms.size(); I != E; ++I) {
    if (First[Syms[I].id()].contains(T.id()))
      return true;
    if (!Nullable[Syms[I].id()])
      return false;
  }
  return Tail && Tail->contains(T.id());
}

unsigned GrammarAnalysis::minProduction(Symbol Nonterminal) const {
  assert(G.isNonterminal(Nonterminal) && "expected a nonterminal");
  unsigned P = MinProd[Nonterminal.id() - G.numTerminals()];
  assert(P != Infinite && "nonterminal is unproductive");
  return P;
}
