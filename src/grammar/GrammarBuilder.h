//===- grammar/GrammarBuilder.h - Programmatic grammar builder -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based builder for Grammar objects.
///
/// Symbols are referred to by name while building; the builder assigns
/// final symbol ids (terminals first, then nonterminals) when build() is
/// called. A name becomes a nonterminal if it appears as the left-hand side
/// of some rule; otherwise it is a terminal (declaring it with token() is
/// optional but catches typos when strict mode is enabled).
///
/// \code
///   GrammarBuilder B;
///   B.token("NUM");
///   B.left({"PLUS"});
///   B.rule("expr", {"expr", "PLUS", "expr"});
///   B.rule("expr", {"NUM"});
///   B.start("expr");
///   std::optional<Grammar> G = B.build(&Err);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMARBUILDER_H
#define LALRCEX_GRAMMAR_GRAMMARBUILDER_H

#include "grammar/Grammar.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lalrcex {

/// Accumulates symbol, rule, and precedence declarations, then produces an
/// immutable Grammar.
class GrammarBuilder {
public:
  /// Declares \p Name as a terminal. Redundant declarations are harmless;
  /// declaring a name that is later used as a rule left-hand side is an
  /// error at build().
  GrammarBuilder &token(const std::string &Name);

  /// Declares several terminals at once.
  GrammarBuilder &tokens(const std::vector<std::string> &Names);

  /// Adds the rule \p Lhs -> \p Rhs. An empty \p Rhs adds an epsilon
  /// production. \p PrecName, if nonempty, names the terminal providing the
  /// rule's precedence (yacc %prec).
  GrammarBuilder &rule(const std::string &Lhs,
                       const std::vector<std::string> &Rhs,
                       const std::string &PrecName = "");

  /// Declares a left/right/nonassociative precedence level, one level per
  /// call with later calls binding tighter (yacc %left / %right /
  /// %nonassoc).
  GrammarBuilder &left(const std::vector<std::string> &Names);
  GrammarBuilder &right(const std::vector<std::string> &Names);
  GrammarBuilder &nonassoc(const std::vector<std::string> &Names);
  /// Declares a precedence level with no associativity (yacc %precedence).
  GrammarBuilder &precedence(const std::vector<std::string> &Names);

  /// Sets the start symbol. Defaults to the first rule's left-hand side.
  GrammarBuilder &start(const std::string &Name);

  /// Declares the number of expected shift/reduce conflicts (%expect).
  GrammarBuilder &expectShiftReduce(int Count) {
    ExpectSr = Count;
    return *this;
  }
  /// Declares the number of expected reduce/reduce conflicts
  /// (%expect-rr).
  GrammarBuilder &expectReduceReduce(int Count) {
    ExpectRr = Count;
    return *this;
  }

  /// When strict, names that are neither declared tokens nor rule
  /// left-hand sides are build() errors instead of implicit terminals.
  GrammarBuilder &strict(bool Strict = true) {
    StrictMode = Strict;
    return *this;
  }

  /// Validates the declarations and produces the grammar. On failure
  /// returns std::nullopt and, if \p ErrorMessage is non-null, stores a
  /// description of the first problem found.
  std::optional<Grammar> build(std::string *ErrorMessage = nullptr) const;

private:
  struct RawRule {
    std::string Lhs;
    std::vector<std::string> Rhs;
    std::string PrecName;
  };
  struct RawPrec {
    std::string Name;
    Assoc A;
    int Level;
  };

  GrammarBuilder &declarePrecLevel(const std::vector<std::string> &Names,
                                   Assoc A);

  std::vector<std::string> DeclaredTokens;
  std::vector<RawRule> Rules;
  std::vector<RawPrec> Precs;
  std::string StartName;
  int NextPrecLevel = 1;
  bool StrictMode = false;
  int ExpectSr = -1;
  int ExpectRr = -1;
};

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMARBUILDER_H
