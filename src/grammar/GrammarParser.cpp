//===- grammar/GrammarParser.cpp ------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
// The robust bison/yacc frontend. Two layers, both built to survive
// arbitrary bytes:
//
//  - a Lexer that tokenizes the grammar dialect while skipping C
//    prologues, semantic actions (brace/string/char/comment aware, with a
//    nesting-depth guard), type tags, named references, and comments.
//    Every malformed construct produces a positioned diagnostic and the
//    lexer resynchronizes; next() always makes progress, so lexing any
//    input terminates in O(bytes);
//
//  - a recursive-descent Parser with panic-mode recovery: an error inside
//    a declaration skips to the next %directive / %% / EOF, an error
//    inside a rule skips to the next ';', '|', '%%', %directive, or rule
//    head (IDENT ':'), so a single pass reports every problem up to the
//    error cap.
//
// A grammar is only produced when the text had zero errors (warnings are
// fine); recovery exists to make the diagnostics complete, not to guess a
// grammar from broken input.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"

#include "grammar/GrammarBuilder.h"
#include "support/StrUtil.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace lalrcex;

namespace {

enum class TokKind {
  Ident,     // identifier or quoted literal (text includes quotes)
  Directive, // %token, %left, ...
  Colon,
  Pipe,
  Semi,
  Separator, // %%
  Action,    // { ... } semantic action block (content skipped)
  End,
};

struct Tok {
  TokKind Kind;
  std::string Text;
  unsigned Line = 1;
  unsigned Col = 1;
};

/// Tokenizer for the bison/yacc grammar dialect. Reports malformed
/// constructs to the DiagnosticEngine and keeps going; the only
/// termination condition is end of input.
class Lexer {
public:
  Lexer(const std::string &Text, const GrammarParseOptions &Opts,
        DiagnosticEngine &DE)
      : Text(Text), Opts(Opts), DE(DE) {}

  Tok next() {
    while (true) {
      skipTrivia();
      if (Pos >= Text.size())
        return make(TokKind::End, "");
      char C = Text[Pos];
      if (C == ':')
        return single(TokKind::Colon);
      if (C == '|')
        return single(TokKind::Pipe);
      if (C == ';')
        return single(TokKind::Semi);
      if (C == '%') {
        std::optional<Tok> T = lexPercent();
        if (T)
          return *T;
        continue; // prologue block or stray '%' consumed
      }
      if (C == '{')
        return lexAction();
      if (C == '\'' || C == '"')
        return lexQuoted(C);
      if (isIdentChar(C))
        return lexIdent();
      // Arbitrary byte: diagnose once per byte value, always advance.
      char Buf[32];
      unsigned char U = static_cast<unsigned char>(C);
      if (std::isprint(U))
        std::snprintf(Buf, sizeof(Buf), "unexpected character '%c'", C);
      else
        std::snprintf(Buf, sizeof(Buf), "unexpected byte 0x%02X", U);
      DE.error(Diag::UnexpectedChar, line(), col(), Buf);
      ++Pos;
    }
  }

private:
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '-';
  }

  unsigned line() const { return Line; }
  unsigned col() const { return unsigned(Pos - LineStart) + 1; }

  Tok make(TokKind K, std::string Text) const {
    return Tok{K, std::move(Text), line(), col()};
  }

  Tok single(TokKind K) {
    Tok T = make(K, std::string(1, Text[Pos]));
    ++Pos;
    return T;
  }

  void newline() {
    ++Line;
    LineStart = Pos + 1;
  }

  /// Skips whitespace, comments, NUL bytes, <type tags>, and [named
  /// references]. Malformed constructs are diagnosed and skipped.
  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        newline();
        ++Pos;
      } else if (C == '\0') {
        if (!NulReported) {
          NulReported = true;
          DE.error(Diag::NulByte, line(), col(),
                   "NUL byte in input (binary data?)");
        }
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '*') {
        unsigned OpenLine = line(), OpenCol = col();
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/')) {
          if (Text[Pos] == '\n')
            newline();
          ++Pos;
        }
        if (Pos + 1 >= Text.size()) {
          DE.error(Diag::UnterminatedComment, OpenLine, OpenCol,
                   "unterminated /* comment");
          Pos = Text.size();
          return;
        }
        Pos += 2;
      } else if (C == '<') {
        // %token <tag> — skip the tag, tolerating nested template angle
        // brackets, but never across a newline (a bare '<' on a broken
        // line must not swallow the rest of the file).
        unsigned OpenLine = line(), OpenCol = col();
        size_t P = Pos + 1;
        int Depth = 1;
        while (P < Text.size() && Text[P] != '\n' && Depth > 0) {
          if (Text[P] == '<')
            ++Depth;
          else if (Text[P] == '>')
            --Depth;
          ++P;
        }
        if (Depth != 0) {
          DE.error(Diag::UnterminatedTag, OpenLine, OpenCol,
                   "unterminated <type tag>");
          Pos = P; // resume at the newline / EOF
        } else {
          Pos = P;
        }
      } else if (C == '[') {
        // Bison named reference: sym[alias]. Skipped; aliases only name
        // semantic values, which we do not model.
        unsigned OpenLine = line(), OpenCol = col();
        size_t Close = Pos + 1;
        while (Close < Text.size() && Text[Close] != ']' &&
               Text[Close] != '\n')
          ++Close;
        if (Close >= Text.size() || Text[Close] != ']') {
          DE.error(Diag::UnterminatedAlias, OpenLine, OpenCol,
                   "unterminated [named reference]");
          Pos = Close;
        } else {
          Pos = Close + 1;
        }
      } else {
        return;
      }
    }
  }

  /// '%' dispatch: "%%" separator, "%{ prologue %}", "%directive", or a
  /// stray '%'. Returns nullopt when the construct was trivia (prologue,
  /// stray '%', stray '%}') and lexing should continue.
  std::optional<Tok> lexPercent() {
    unsigned StartLine = line(), StartCol = col();
    size_t Start = Pos;
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '%') {
      ++Pos;
      return Tok{TokKind::Separator, "%%", StartLine, StartCol};
    }
    if (Pos < Text.size() && Text[Pos] == '{') {
      // %{ C prologue %} — opaque; scan for the closing %}.
      ++Pos;
      while (Pos + 1 < Text.size() &&
             !(Text[Pos] == '%' && Text[Pos + 1] == '}')) {
        if (Text[Pos] == '\n')
          newline();
        ++Pos;
      }
      if (Pos + 1 >= Text.size()) {
        DE.error(Diag::UnterminatedPrologue, StartLine, StartCol,
                 "unterminated %{ prologue (no closing %})");
        Pos = Text.size();
      } else {
        Pos += 2;
      }
      return std::nullopt;
    }
    if (Pos < Text.size() && Text[Pos] == '}') {
      DE.error(Diag::UnexpectedChar, StartLine, StartCol,
               "stray %} without matching %{");
      ++Pos;
      return std::nullopt;
    }
    if (Pos >= Text.size() || !isIdentChar(Text[Pos])) {
      DE.error(Diag::UnexpectedChar, StartLine, StartCol, "stray '%'");
      return std::nullopt;
    }
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return Tok{TokKind::Directive, Text.substr(Start, Pos - Start), StartLine,
               StartCol};
  }

  /// { ... } semantic action. Brace counting is string/char/comment
  /// aware so "}" inside a C string cannot derail it; nesting depth is
  /// bounded by an explicit guard (diagnosed once, counting continues so
  /// the scan still terminates).
  Tok lexAction() {
    unsigned OpenLine = line(), OpenCol = col();
    ++Pos;
    size_t Depth = 1;
    bool DepthDiagnosed = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        newline();
        ++Pos;
      } else if (C == '{') {
        ++Depth;
        ++Pos;
        if (Depth > Opts.MaxActionDepth && !DepthDiagnosed) {
          DepthDiagnosed = true;
          DE.error(Diag::DepthLimit, line(), col(),
                   "action brace nesting exceeds limit (" +
                       std::to_string(Opts.MaxActionDepth) + ")");
        }
      } else if (C == '}') {
        ++Pos;
        if (--Depth == 0)
          return Tok{TokKind::Action, "{...}", OpenLine, OpenCol};
      } else if (C == '\'' || C == '"') {
        skipActionString(C);
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/')) {
          if (Text[Pos] == '\n')
            newline();
          ++Pos;
        }
        Pos = Pos + 1 < Text.size() ? Pos + 2 : Text.size();
      } else {
        ++Pos;
      }
    }
    DE.error(Diag::UnterminatedAction, OpenLine, OpenCol,
             "unterminated { action } block");
    return Tok{TokKind::Action, "{...}", OpenLine, OpenCol};
  }

  /// String/char literal inside an action: consumed opaquely with
  /// backslash escapes; an unterminated literal ends at the newline (the
  /// action scan resumes there — actions are not our code to check).
  void skipActionString(char Quote) {
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\\' && Pos + 1 < Text.size()) {
        if (Text[Pos + 1] == '\n')
          newline();
        Pos += 2;
      } else if (C == Quote) {
        ++Pos;
        return;
      } else if (C == '\n') {
        return; // unterminated: resynchronize at the newline
      } else {
        ++Pos;
      }
    }
  }

  /// Quoted grammar symbol ('+' or "then"), backslash escapes honored,
  /// quotes kept in the token text. An unterminated literal is diagnosed
  /// and the consumed prefix returned as a best-effort token so the
  /// parse continues on this line's remains.
  Tok lexQuoted(char Quote) {
    unsigned StartLine = line(), StartCol = col();
    size_t Start = Pos;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != Quote && Text[Pos] != '\n') {
      if (Text[Pos] == '\\' && Pos + 1 < Text.size() &&
          Text[Pos + 1] != '\n')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size() || Text[Pos] != Quote) {
      DE.error(Diag::UnterminatedQuote, StartLine, StartCol,
               "unterminated quoted symbol");
      return Tok{TokKind::Ident, Text.substr(Start, Pos - Start), StartLine,
                 StartCol};
    }
    ++Pos;
    return Tok{TokKind::Ident, Text.substr(Start, Pos - Start), StartLine,
               StartCol};
  }

  Tok lexIdent() {
    unsigned StartLine = line(), StartCol = col();
    size_t Start = Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return Tok{TokKind::Ident, Text.substr(Start, Pos - Start), StartLine,
               StartCol};
  }

  const std::string &Text;
  const GrammarParseOptions &Opts;
  DiagnosticEngine &DE;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
  bool NulReported = false;
};

/// Directives accepted and ignored without comment: they configure the
/// generated parser's code, not the grammar's conflict structure. Each
/// may be followed by idents / strings / tags / { blocks }, all gobbled.
bool isIgnoredDirective(const std::string &D) {
  static const std::unordered_set<std::string> Set = {
      "%union",          "%code",         "%destructor",   "%printer",
      "%initial-action", "%parse-param",  "%lex-param",    "%param",
      "%define",         "%language",     "%locations",    "%no-lines",
      "%defines",        "%header",       "%output",       "%file-prefix",
      "%name-prefix",    "%require",      "%skeleton",     "%debug",
      "%verbose",        "%yacc",         "%token-table",  "%error-verbose",
      "%pure-parser",    "%pure_parser",  "%expect-lr",    "%ident",
  };
  return Set.count(D) > 0;
}

/// Directives whose semantics we cannot model (GLR conflict handling):
/// downgraded to warnings so the file still loads, with the caveat on
/// record.
bool isWarnedDirective(const std::string &D) {
  static const std::unordered_set<std::string> Set = {
      "%glr-parser", "%nondeterministic-parser", "%no-default-prec",
      "%default-prec",
  };
  return Set.count(D) > 0;
}

/// Recursive-descent parser over the token stream, driving a
/// GrammarBuilder, with panic-mode recovery.
class Parser {
public:
  Parser(const std::string &Text, const GrammarParseOptions &Opts,
         DiagnosticEngine &DE)
      : Lex(Text, Opts, DE), DE(DE) {
    Cur = Lex.next();
  }

  std::optional<Grammar> run() {
    parseDeclarations();
    parseRules();
    if (DE.errorCount() > 0)
      return std::nullopt;
    std::string BuildErr;
    std::optional<Grammar> G = B.build(&BuildErr);
    if (!G)
      DE.error(Diag::BuildError, 0, 0, BuildErr);
    return G;
  }

private:
  void advance() {
    if (HasAhead) {
      Cur = std::move(Ahead);
      HasAhead = false;
    } else {
      Cur = Lex.next();
    }
  }

  const Tok &peek() {
    if (!HasAhead) {
      Ahead = Lex.next();
      HasAhead = true;
    }
    return Ahead;
  }

  bool atRuleHead() {
    return Cur.Kind == TokKind::Ident && peek().Kind == TokKind::Colon;
  }

  void error(const char *Code, const std::string &Msg) {
    DE.error(Code, Cur.Line, Cur.Col, Msg);
  }

  /// Token aliases: %token NAME "alias" lets rule bodies use the string
  /// spelling; both map to NAME.
  std::string resolve(const std::string &Name) const {
    auto It = Aliases.find(Name);
    return It == Aliases.end() ? Name : It->second;
  }

  static bool isQuotedString(const std::string &S) {
    return S.size() >= 2 && S.front() == '"';
  }
  static bool isNumber(const std::string &S) {
    if (S.empty())
      return false;
    for (char C : S)
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return false;
    return true;
  }

  /// Skips the arguments of a directive we do not interpret: everything
  /// up to the next directive, separator, rule head, or end of input.
  void gobbleDirectiveArgs() {
    while (Cur.Kind == TokKind::Ident || Cur.Kind == TokKind::Action) {
      if (atRuleHead())
        return;
      advance();
    }
  }

  /// Panic recovery inside the declaration section: resynchronize at the
  /// next %directive, %%, rule head, or EOF.
  void syncDeclaration() {
    while (Cur.Kind != TokKind::Directive && Cur.Kind != TokKind::Separator &&
           Cur.Kind != TokKind::End) {
      if (atRuleHead())
        return;
      if (DE.errorCapReached())
        return;
      advance();
    }
  }

  void parseDeclarations() {
    while (true) {
      if (DE.errorCapReached())
        return;
      switch (Cur.Kind) {
      case TokKind::Separator:
        advance();
        return;
      case TokKind::End:
        DE.error(Diag::MissingSeparator, Cur.Line, Cur.Col,
                 "expected %% before rules");
        return;
      case TokKind::Semi:   // stray ';' in declarations: yacc tolerates
      case TokKind::Action: // stray { block }: opaque, ignore
        advance();
        break;
      case TokKind::Directive:
        parseDirective();
        break;
      default:
        if (atRuleHead()) {
          // Looks like the user forgot the %% line. Diagnose once and
          // hand over to the rules parser from here.
          DE.error(Diag::MissingSeparator, Cur.Line, Cur.Col,
                   "expected %% before rules (rule '" + Cur.Text +
                       "' starts here)");
          return;
        }
        error(Diag::StrayToken,
              "expected a %-directive in the declaration section");
        advance();
        syncDeclaration();
        break;
      }
    }
  }

  void parseDirective() {
    std::string D = Cur.Text;
    unsigned DLine = Cur.Line, DCol = Cur.Col;
    advance();
    if (D == "%start") {
      if (Cur.Kind != TokKind::Ident) {
        DE.error(Diag::BadDirectiveArg, DLine, DCol,
                 "%start requires a symbol name");
        syncDeclaration();
        return;
      }
      B.start(Cur.Text);
      advance();
      return;
    }
    if (D == "%token" || D == "%term") {
      parseTokenDecl(D);
      return;
    }
    if (D == "%left" || D == "%right" || D == "%nonassoc" ||
        D == "%binary" || D == "%precedence") {
      std::vector<std::string> Names;
      while (Cur.Kind == TokKind::Ident) {
        if (atRuleHead())
          break;
        if (isNumber(Cur.Text)) {
          advance(); // explicit token code: ignored
          continue;
        }
        Names.push_back(resolve(Cur.Text));
        advance();
      }
      if (D == "%left")
        B.left(Names);
      else if (D == "%right")
        B.right(Names);
      else if (D == "%nonassoc" || D == "%binary")
        B.nonassoc(Names);
      else
        B.precedence(Names);
      return;
    }
    if (D == "%type" || D == "%nterm") {
      gobbleDirectiveArgs(); // declarations about semantic types: ignored
      return;
    }
    if (D == "%expect" || D == "%expect-rr") {
      // Conflict-count annotations: one numeric argument. A count that
      // does not parse as a non-negative integer is a positioned hard
      // error (atoi silently read garbage as 0 in an earlier life).
      std::vector<std::string> Names;
      while (Cur.Kind == TokKind::Ident && !atRuleHead()) {
        Names.push_back(Cur.Text);
        advance();
      }
      if (Names.size() != 1) {
        DE.error(Diag::BadDirectiveArg, DLine, DCol,
                 D + " requires one numeric argument");
        return;
      }
      std::optional<uint64_t> Count =
          parseUnsigned(Names[0], uint64_t(std::numeric_limits<int>::max()));
      if (!Count) {
        DE.error(Diag::BadDirectiveArg, DLine, DCol,
                 D + " count '" + Names[0] +
                     "' is not a non-negative integer");
        return;
      }
      if (D == "%expect")
        B.expectShiftReduce(int(*Count));
      else
        B.expectReduceReduce(int(*Count));
      return;
    }
    if (isIgnoredDirective(D)) {
      gobbleDirectiveArgs();
      return;
    }
    if (isWarnedDirective(D)) {
      DE.warning(Diag::IgnoredDirective, DLine, DCol,
                 "directive '" + D +
                     "' ignored (GLR/default-prec semantics not modeled; "
                     "conflict counts reflect plain LALR)");
      gobbleDirectiveArgs();
      return;
    }
    DE.error(Diag::UnknownDirective, DLine, DCol,
             "unknown directive '" + D + "'");
    syncDeclaration();
  }

  /// %token [<tag>] NAME ["alias"] [NUMBER] ... — declares terminals,
  /// records string aliases, ignores explicit token codes, and warns on
  /// duplicate declarations.
  void parseTokenDecl(const std::string &D) {
    std::string LastName;
    while (Cur.Kind == TokKind::Ident) {
      if (atRuleHead())
        return;
      const std::string &T = Cur.Text;
      if (isQuotedString(T) && !LastName.empty()) {
        // Literal-string alias for the preceding token name.
        Aliases[T] = LastName;
      } else if (isNumber(T)) {
        // Explicit token code ("%token NAME 258"): the numeric id only
        // matters to a generated lexer interface, not to conflicts.
      } else {
        if (!DeclaredTokens.insert(T).second)
          DE.warning(Diag::DuplicateToken, Cur.Line, Cur.Col,
                     "duplicate " + D + " declaration of '" + T + "'");
        B.token(T);
        LastName = T;
      }
      advance();
    }
  }

  /// Result of panic recovery inside an alternative list.
  enum class AltSync { NextAlternative, EndOfRule };

  AltSync syncAlternative() {
    while (true) {
      if (DE.errorCapReached())
        return AltSync::EndOfRule;
      switch (Cur.Kind) {
      case TokKind::Pipe:
        advance();
        return AltSync::NextAlternative;
      case TokKind::Semi:
        advance();
        return AltSync::EndOfRule;
      case TokKind::Separator:
      case TokKind::End:
      case TokKind::Directive:
        return AltSync::EndOfRule;
      case TokKind::Ident:
        if (atRuleHead())
          return AltSync::EndOfRule;
        advance();
        break;
      default:
        advance();
        break;
      }
    }
  }

  void parseRules() {
    while (true) {
      if (DE.errorCapReached())
        return;
      switch (Cur.Kind) {
      case TokKind::End:
        return; // missing trailing %% is fine
      case TokKind::Separator:
        return; // epilogue after the second %% is never even lexed
      case TokKind::Semi: // stray ';' between rules
        advance();
        break;
      case TokKind::Action:
        DE.warning(Diag::StrayToken, Cur.Line, Cur.Col,
                   "stray { action } between rules ignored");
        advance();
        break;
      case TokKind::Directive:
        error(Diag::StrayToken, "directive '" + Cur.Text +
                                    "' not allowed in the rules section");
        advance();
        gobbleDirectiveArgs();
        break;
      case TokKind::Ident: {
        std::string Lhs = Cur.Text;
        if (peek().Kind != TokKind::Colon) {
          error(Diag::BadRule, "expected ':' after rule name '" + Lhs + "'");
          advance();
          if (syncAlternative() == AltSync::NextAlternative)
            (void)0; // broken rule head: alternatives have no LHS, drop
          break;
        }
        advance(); // LHS
        advance(); // ':'
        parseAlternatives(Lhs);
        break;
      }
      default:
        error(Diag::StrayToken, "expected a rule left-hand side");
        advance();
        break;
      }
    }
  }

  void parseAlternatives(const std::string &Lhs) {
    while (true) {
      if (DE.errorCapReached())
        return;
      std::vector<std::string> Rhs;
      std::vector<bool> IsAction; // parallel: marks mid-rule action slots
      std::string PrecName;
      bool Broken = false;
      while (Cur.Kind == TokKind::Ident || Cur.Kind == TokKind::Action ||
             Cur.Kind == TokKind::Directive) {
        if (Cur.Kind == TokKind::Action) {
          Rhs.push_back("");
          IsAction.push_back(true);
          advance();
          continue;
        }
        if (Cur.Kind == TokKind::Directive) {
          if (Cur.Text == "%prec") {
            advance();
            if (Cur.Kind != TokKind::Ident) {
              error(Diag::BadPrec, "%prec requires a symbol name");
              Broken = true;
              break;
            }
            PrecName = resolve(Cur.Text);
            advance();
          } else if (Cur.Text == "%empty") {
            advance();
          } else if (Cur.Text == "%dprec" || Cur.Text == "%merge") {
            DE.warning(Diag::IgnoredDirective, Cur.Line, Cur.Col,
                       "'" + Cur.Text +
                           "' ignored (GLR disambiguation not modeled)");
            advance();
            if (Cur.Kind == TokKind::Ident)
              advance(); // the %dprec number / %merge function name
          } else {
            break; // file-level directive: let the rules loop diagnose it
          }
          continue;
        }
        if (atRuleHead())
          break; // missing ';' before the next rule: tolerated
        Rhs.push_back(resolve(Cur.Text));
        IsAction.push_back(false);
        advance();
      }
      if (!Broken)
        finishAlternative(Lhs, Rhs, IsAction, PrecName);
      if (Broken) {
        if (syncAlternative() == AltSync::NextAlternative)
          continue;
        return;
      }
      if (Cur.Kind == TokKind::Pipe) {
        advance();
        continue;
      }
      if (Cur.Kind == TokKind::Semi) {
        advance();
        return;
      }
      if (Cur.Kind == TokKind::End || Cur.Kind == TokKind::Separator ||
          Cur.Kind == TokKind::Directive || atRuleHead())
        return; // missing ';' tolerated at section end / next rule
      error(Diag::BadAlternative, "expected '|', ';', or end of rules");
      if (syncAlternative() == AltSync::NextAlternative)
        continue;
      return;
    }
  }

  /// Emits one alternative. Trailing actions are dropped (they cannot
  /// affect parsing decisions); each interior action is desugared into a
  /// fresh epsilon nonterminal ($@1, $@2, ...) exactly as bison does, so
  /// mid-rule actions keep their real effect on the conflict structure.
  void finishAlternative(const std::string &Lhs, std::vector<std::string> &Rhs,
                         std::vector<bool> &IsAction,
                         const std::string &PrecName) {
    while (!IsAction.empty() && IsAction.back()) {
      IsAction.pop_back();
      Rhs.pop_back();
    }
    for (size_t I = 0; I != Rhs.size(); ++I) {
      if (!IsAction[I])
        continue;
      std::string Fresh = "$@" + std::to_string(++MidRuleCount);
      B.rule(Fresh, {});
      Rhs[I] = Fresh;
    }
    B.rule(Lhs, Rhs, PrecName);
  }

  Lexer Lex;
  DiagnosticEngine &DE;
  Tok Cur{TokKind::End, "", 1, 1};
  Tok Ahead{TokKind::End, "", 1, 1};
  bool HasAhead = false;
  GrammarBuilder B;
  std::unordered_map<std::string, std::string> Aliases;
  std::unordered_set<std::string> DeclaredTokens;
  unsigned MidRuleCount = 0;
};

} // namespace

GrammarParseResult lalrcex::parseGrammar(const std::string &Text,
                                         const GrammarParseOptions &Opts) {
  GrammarParseResult R;
  DiagnosticEngine DE(Text, Opts.MaxErrors);
  // The never-crash contract: no exception may escape, whatever the
  // bytes. Anything thrown (bad_alloc included) becomes a diagnostic.
  try {
    Parser P(Text, Opts, DE);
    R.G = P.run();
  } catch (const std::exception &E) {
    R.G.reset();
    DE.error(Diag::BuildError, 0, 0,
             std::string("internal error: ") + E.what());
  } catch (...) {
    R.G.reset();
    DE.error(Diag::BuildError, 0, 0, "internal error: unknown exception");
  }
  R.ErrorCount = DE.errorCount();
  R.WarningCount = DE.warningCount();
  R.Diags = DE.take();
  if (R.ErrorCount > 0)
    R.G.reset();
  return R;
}

std::optional<Grammar>
lalrcex::parseGrammarText(const std::string &Text,
                          std::string *ErrorMessage) {
  GrammarParseResult R = parseGrammar(Text);
  if (R.G)
    return std::move(R.G);
  if (ErrorMessage) {
    if (const Diagnostic *D = R.firstError()) {
      // Historic shape: "line N: message" (build()-level problems carry
      // no position and keep the bare message).
      *ErrorMessage = D->Line == 0
                          ? D->Message
                          : "line " + std::to_string(D->Line) + ": " +
                                D->Message;
    } else {
      *ErrorMessage = "parse failed";
    }
  }
  return std::nullopt;
}
