//===- grammar/GrammarParser.cpp ------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"

#include "grammar/GrammarBuilder.h"
#include "support/StrUtil.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <vector>

using namespace lalrcex;

namespace {

enum class TokKind {
  Ident,     // identifier or quoted literal (text includes quotes)
  Directive, // %token, %left, ...
  Colon,
  Pipe,
  Semi,
  Separator, // %%
  End,
};

struct Tok {
  TokKind Kind;
  std::string Text;
  int Line;
};

/// Tokenizer for the grammar text format. Skips comments, <tags>, and
/// balanced { } action blocks.
class Lexer {
public:
  Lexer(const std::string &Text, std::string *Err)
      : Text(Text), Err(Err) {}

  Tok next() {
    if (!skipTrivia())
      return fail("unterminated comment or action block");
    if (Pos >= Text.size())
      return Tok{TokKind::End, "", Line};
    char C = Text[Pos];
    if (C == ':')
      return single(TokKind::Colon);
    if (C == '|')
      return single(TokKind::Pipe);
    if (C == ';')
      return single(TokKind::Semi);
    if (C == '%')
      return lexPercent();
    if (C == '\'' || C == '"')
      return lexQuoted(C);
    if (isIdentChar(C))
      return lexIdent();
    return fail(std::string("unexpected character '") + C + "'");
  }

  bool failed() const { return Failed; }

private:
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '-';
  }

  Tok fail(const std::string &Msg) {
    if (!Failed && Err)
      *Err = "line " + std::to_string(Line) + ": " + Msg;
    Failed = true;
    return Tok{TokKind::End, "", Line};
  }

  Tok single(TokKind K) {
    ++Pos;
    return Tok{K, "", Line};
  }

  /// Skips whitespace, comments, <type tags>, and { action } blocks.
  /// \returns false on an unterminated construct.
  bool skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/')) {
          if (Text[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        if (Pos + 1 >= Text.size())
          return false;
        Pos += 2;
      } else if (C == '<') {
        // %token <tag> — skip the tag.
        size_t Close = Text.find('>', Pos);
        if (Close == std::string::npos)
          return false;
        Pos = Close + 1;
      } else if (C == '{') {
        // Semantic action: skip balanced braces (no string awareness
        // needed; corpus grammars carry no actions with braces in
        // strings).
        int Depth = 0;
        while (Pos < Text.size()) {
          if (Text[Pos] == '{')
            ++Depth;
          else if (Text[Pos] == '}' && --Depth == 0) {
            ++Pos;
            break;
          } else if (Text[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        if (Depth != 0)
          return false;
      } else {
        return true;
      }
    }
    return true;
  }

  Tok lexPercent() {
    size_t Start = Pos;
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '%') {
      ++Pos;
      return Tok{TokKind::Separator, "%%", Line};
    }
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return Tok{TokKind::Directive, Text.substr(Start, Pos - Start), Line};
  }

  Tok lexQuoted(char Quote) {
    size_t Start = Pos;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != Quote && Text[Pos] != '\n')
      ++Pos;
    if (Pos >= Text.size() || Text[Pos] != Quote)
      return fail("unterminated quoted symbol");
    ++Pos;
    return Tok{TokKind::Ident, Text.substr(Start, Pos - Start), Line};
  }

  Tok lexIdent() {
    size_t Start = Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return Tok{TokKind::Ident, Text.substr(Start, Pos - Start), Line};
  }

  const std::string &Text;
  std::string *Err;
  size_t Pos = 0;
  int Line = 1;
  bool Failed = false;
};

/// Recursive-descent parser over the token stream, driving a
/// GrammarBuilder.
class Parser {
public:
  Parser(const std::string &Text, std::string *Err)
      : Lex(Text, Err), Err(Err) {
    advance();
  }

  std::optional<Grammar> run() {
    if (!parseDeclarations())
      return std::nullopt;
    if (!parseRules())
      return std::nullopt;
    std::string BuildErr;
    std::optional<Grammar> G = B.build(&BuildErr);
    if (!G && Err)
      *Err = BuildErr;
    return G;
  }

private:
  void advance() { Cur = Lex.next(); }

  bool error(const std::string &Msg) {
    return errorAt(Cur.Line, Msg);
  }

  /// Positioned error for constructs whose tokens have already been
  /// consumed (Cur.Line would point past them).
  bool errorAt(unsigned Line, const std::string &Msg) {
    if (Err && !Lex.failed())
      *Err = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  bool parseDeclarations() {
    while (true) {
      if (Lex.failed())
        return false;
      if (Cur.Kind == TokKind::Separator) {
        advance();
        return true;
      }
      if (Cur.Kind == TokKind::End)
        return error("expected %% before rules");
      if (Cur.Kind != TokKind::Directive)
        return error("expected a %-directive in the declaration section");
      std::string D = Cur.Text;
      unsigned DirectiveLine = Cur.Line;
      advance();
      if (D == "%start") {
        if (Cur.Kind != TokKind::Ident)
          return error("%start requires a symbol name");
        B.start(Cur.Text);
        advance();
        continue;
      }
      // Directives taking a list of symbol names.
      std::vector<std::string> Names;
      while (Cur.Kind == TokKind::Ident) {
        Names.push_back(Cur.Text);
        advance();
      }
      if (D == "%token" || D == "%type") {
        if (D == "%token")
          B.tokens(Names);
        // %type is accepted and ignored.
      } else if (D == "%left") {
        B.left(Names);
      } else if (D == "%right") {
        B.right(Names);
      } else if (D == "%nonassoc") {
        B.nonassoc(Names);
      } else if (D == "%precedence") {
        B.precedence(Names);
      } else if (D == "%expect" || D == "%expect-rr") {
        // Conflict-count annotations: one numeric argument. atoi used to
        // live here and silently turned "%expect foo" or "%expect -3"
        // into 0; a count that does not parse as a non-negative integer
        // is now a positioned hard error. (The lexer treats '-' as an
        // identifier character, so "-3" arrives as one Ident token.)
        if (Names.size() != 1)
          return errorAt(DirectiveLine, D + " requires one numeric argument");
        std::optional<uint64_t> Count =
            parseUnsigned(Names[0], uint64_t(std::numeric_limits<int>::max()));
        if (!Count)
          return errorAt(DirectiveLine,
                         D + " count '" + Names[0] +
                             "' is not a non-negative integer");
        if (D == "%expect")
          B.expectShiftReduce(int(*Count));
        else
          B.expectReduceReduce(int(*Count));
      } else {
        return error("unknown directive '" + D + "'");
      }
    }
  }

  bool parseRules() {
    while (true) {
      if (Lex.failed())
        return false;
      if (Cur.Kind == TokKind::End || Cur.Kind == TokKind::Separator)
        return true;
      if (Cur.Kind != TokKind::Ident)
        return error("expected a rule left-hand side");
      std::string Lhs = Cur.Text;
      advance();
      if (Cur.Kind != TokKind::Colon)
        return error("expected ':' after rule name '" + Lhs + "'");
      advance();
      if (!parseAlternatives(Lhs))
        return false;
      if (Cur.Kind == TokKind::Semi)
        advance();
      // A missing ';' is tolerated when the next token starts a new rule
      // or ends the section, matching common yacc laxness only at EOF.
    }
  }

  bool parseAlternatives(const std::string &Lhs) {
    while (true) {
      std::vector<std::string> Rhs;
      std::string PrecName;
      while (Cur.Kind == TokKind::Ident || Cur.Kind == TokKind::Directive) {
        if (Cur.Kind == TokKind::Directive) {
          if (Cur.Text == "%prec") {
            advance();
            if (Cur.Kind != TokKind::Ident)
              return error("%prec requires a symbol name");
            PrecName = Cur.Text;
            advance();
          } else if (Cur.Text == "%empty") {
            advance();
          } else {
            return error("unexpected directive '" + Cur.Text +
                         "' inside a rule");
          }
          continue;
        }
        Rhs.push_back(Cur.Text);
        advance();
      }
      B.rule(Lhs, Rhs, PrecName);
      if (Cur.Kind == TokKind::Pipe) {
        advance();
        continue;
      }
      if (Cur.Kind == TokKind::Semi || Cur.Kind == TokKind::End ||
          Cur.Kind == TokKind::Separator)
        return true;
      return error("expected '|', ';', or end of rules");
    }
  }

  Lexer Lex;
  std::string *Err;
  Tok Cur{TokKind::End, "", 0};
  GrammarBuilder B;
};

} // namespace

std::optional<Grammar>
lalrcex::parseGrammarText(const std::string &Text,
                          std::string *ErrorMessage) {
  Parser P(Text, ErrorMessage);
  return P.run();
}
