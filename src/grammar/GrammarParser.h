//===- grammar/GrammarParser.h - Yacc-like grammar text format -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a yacc-like textual grammar description into a Grammar.
///
/// Supported syntax:
/// \code
///   /* comments */  // line comments
///   %token NAME ...            (optional <tag> after the directive)
///   %left  '+' '-'             (one precedence level per line, later
///   %right UMINUS               lines bind tighter)
///   %nonassoc '<'
///   %precedence NAME
///   %start name
///   %%
///   name : sym sym ...         (empty alternative or %empty for epsilon)
///        | sym ... %prec NAME
///        ;
///   %%                          (anything after a second %% is ignored)
/// \endcode
///
/// Quoted symbols ('+', "then") denote terminals; the quotes are kept in
/// the symbol name. Semantic action blocks { ... } are skipped. Undeclared
/// identifiers that never appear as a rule left-hand side become terminals.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMARPARSER_H
#define LALRCEX_GRAMMAR_GRAMMARPARSER_H

#include "grammar/Grammar.h"

#include <optional>
#include <string>

namespace lalrcex {

/// Parses \p Text into a Grammar. On failure returns std::nullopt and, if
/// \p ErrorMessage is non-null, a message of the form "line N: ...".
std::optional<Grammar> parseGrammarText(const std::string &Text,
                                        std::string *ErrorMessage = nullptr);

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMARPARSER_H
