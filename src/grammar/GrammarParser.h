//===- grammar/GrammarParser.h - Yacc-like grammar text format -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a yacc/bison textual grammar description into a Grammar, with
/// structured diagnostics and panic-mode error recovery.
///
/// Core syntax (the paper-style dialect):
/// \code
///   /* comments */  // line comments
///   %token NAME ...            (optional <tag> after the directive)
///   %left  '+' '-'             (one precedence level per line, later
///   %right UMINUS               lines bind tighter)
///   %nonassoc '<'
///   %precedence NAME
///   %start name
///   %%
///   name : sym sym ...         (empty alternative or %empty for epsilon)
///        | sym ... %prec NAME
///        ;
///   %%                          (anything after a second %% is ignored)
/// \endcode
///
/// On top of that the reader swallows real bison/byacc files:
///  - `%{ prologue %}` blocks and `{ semantic actions }` are skipped with
///    brace/string/char/comment awareness (an explicit nesting-depth guard
///    bounds pathological inputs);
///  - `%union`, `%code`, `%destructor`, `%printer`, `%initial-action`,
///    `%parse-param`, `%define`, ... are accepted and ignored (see the
///    directive table in README.md); `%glr-parser`-ish directives that
///    would change conflict semantics are downgraded to warnings;
///  - `%token NAME "alias"` records the string alias, and rule bodies may
///    use either spelling;
///  - bison named references `sym[alias]` are skipped;
///  - mid-rule actions are desugared into fresh epsilon nonterminals
///    (`$@1`, `$@2`, ...), exactly as bison does, so their effect on
///    conflicts is modeled;
///  - `%expect N` / `%expect-rr N` declare expected conflict counts.
///
/// Quoted symbols ('+', "then") denote terminals; the quotes are kept in
/// the symbol name. Undeclared identifiers that never appear as a rule
/// left-hand side become terminals.
///
/// The never-crash contract: parseGrammar() accepts arbitrary bytes (NULs,
/// unterminated constructs, CRLF, multi-megabyte tokens, deep nesting) and
/// always returns structured diagnostics — it never throws, crashes, or
/// fails to terminate. Errors are recovered in panic mode (syncing at ';',
/// '|', '%%', or the next %directive / rule head) so one parse reports
/// every problem up to the error cap.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMARPARSER_H
#define LALRCEX_GRAMMAR_GRAMMARPARSER_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace lalrcex {

/// Tunables for the robust frontend. The defaults are what every CLI
/// uses; tests and the fuzzer tighten them to hit the limit paths.
struct GrammarParseOptions {
  /// Errors collected before giving up (P901 note marks truncation).
  size_t MaxErrors = 50;
  /// Maximum brace nesting inside actions/%union/%code blocks; deeper
  /// input produces a P902 error (parsing still terminates).
  size_t MaxActionDepth = 200;
};

/// Result of parseGrammar(): the grammar (only when the text had no
/// errors — warnings are fine) plus every collected diagnostic.
struct GrammarParseResult {
  std::optional<Grammar> G;
  std::vector<Diagnostic> Diags;
  size_t ErrorCount = 0;
  size_t WarningCount = 0;

  bool ok() const { return G.has_value(); }

  /// First error diagnostic, or nullptr when the parse succeeded.
  const Diagnostic *firstError() const {
    for (const Diagnostic &D : Diags)
      if (D.Severity == DiagSeverity::Error)
        return &D;
    return nullptr;
  }

  /// Renders all diagnostics with caret snippets against \p Source (the
  /// text that was parsed).
  std::string renderDiagnostics(const std::string &Source) const {
    return lalrcex::renderDiagnostics(Diags, Source);
  }
};

/// Parses \p Text into a Grammar with full diagnostics. Never throws; see
/// the never-crash contract above.
GrammarParseResult parseGrammar(const std::string &Text,
                                const GrammarParseOptions &Opts = {});

/// Deprecated single-error shim over parseGrammar(): on failure returns
/// std::nullopt and, if \p ErrorMessage is non-null, the first error as a
/// "line N: ..." string. New callers should use parseGrammar() and render
/// the diagnostics list; this stays until every caller has migrated.
std::optional<Grammar> parseGrammarText(const std::string &Text,
                                        std::string *ErrorMessage = nullptr);

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMARPARSER_H
