//===- grammar/GrammarPrinter.h - Grammar serialization --------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a Grammar back into the yacc-like text format accepted by
/// parseGrammarText. Round-tripping (parse, print, parse) yields an
/// identical grammar, which the tests verify.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMARPRINTER_H
#define LALRCEX_GRAMMAR_GRAMMARPRINTER_H

#include "grammar/Grammar.h"

#include <string>

namespace lalrcex {

/// Renders \p G in the parseGrammarText format: %token declarations for
/// terminals, precedence declarations in level order, %start, and one
/// rule group per nonterminal in production order. The synthetic
/// augmented production is omitted.
std::string printGrammarText(const Grammar &G);

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMARPRINTER_H
