//===- grammar/GrammarDelta.h - Structural diff of two grammars *- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural diff between two grammars — the old one an automaton was
/// built for and the edited one the author just handed back — expressed
/// as partial id maps plus dirtiness sets. It is the input contract of
/// the dirty-state automaton patch (lr/Automaton.h) and of conflict-
/// report remapping (counterexample/IncrementalSession.h).
///
/// Matching is deliberately conservative: the delta only claims what it
/// can prove cheaply, and every consumer falls back to a cold rebuild
/// when `Valid` is false or a needed id is unmapped. Concretely:
///
///   - Terminals are matched by name first ("$"/eof always pairs id 0
///     with id 0); leftover old and new terminals are then paired
///     positionally in id order, which absorbs renames exactly as for
///     nonterminals. A removed terminal simply stays unmapped — every
///     production mentioning it fails to match and its block becomes
///     edited, so the dirty cone covers all structure that could see
///     the change. Terminal ids double as lookahead-bitset indices, so
///     consumers translate bitsets through the map
///     (translateTerminalSet); because spliced per-state conflict runs
///     must stay sorted by token id under that translation, a
///     non-monotone terminal map invalidates the delta (our edit model
///     appends, removes, or renames in place, all of which keep the map
///     monotone).
///   - Nonterminals are matched by name first; leftover old and new
///     nonterminals are then paired positionally in id order, which
///     absorbs renames. A mis-pairing is harmless: the paired blocks
///     fail to match structurally and both sides are marked edited.
///   - Per matched nonterminal, the production blocks are compared
///     positionally under the symbol map; a positionally identical
///     block is *unedited* and maps 1:1. Otherwise the nonterminal is
///     *edited* on both sides and the blocks are matched by a longest
///     common subsequence, so an insert/delete/rotation still maps
///     every surviving alternative.
///   - The production map must be globally monotone (old index order
///     preserved), because item vectors and kernels are ordered by
///     production index and the automaton patch splices them without
///     re-sorting. Our edit model only inserts/deletes/rotates within
///     a block, which keeps the map monotone; anything wilder simply
///     invalidates the delta.
///
/// *Edited* is a local property (this nonterminal's own block changed);
/// *affected* is its transitive closure through sub-grammar slices: a
/// nonterminal is affected when its slice (grammar/SubGrammar.h) can
/// reach an edited nonterminal, i.e. when FIRST sets, nullability, or
/// derivations rooted at it could differ between the two grammars.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_GRAMMARDELTA_H
#define LALRCEX_GRAMMAR_GRAMMARDELTA_H

#include "grammar/Grammar.h"
#include "support/IndexSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lalrcex {

class SubGrammarIndex;

/// The structural diff described in the file comment. All vectors are
/// indexed by old/new symbol id or production index; -1 means unmapped.
struct GrammarDelta {
  /// False when the grammars are not comparable (terminal mismatch,
  /// non-monotone production map); consumers must rebuild cold.
  bool Valid = false;
  /// One-line reason when !Valid, for trace/debug output.
  std::string InvalidReason;

  std::vector<int32_t> SymbolMap;    ///< old symbol id -> new id or -1
  std::vector<int32_t> InvSymbolMap; ///< new symbol id -> old id or -1
  std::vector<int32_t> ProdMap;      ///< old prod index -> new index or -1
  std::vector<int32_t> InvProdMap;   ///< new prod index -> old index or -1

  /// Terminal universe sizes of the two grammars (terminal ids are the
  /// lookahead-bitset universe; translateTerminalSet converts between
  /// them).
  uint32_t OldNumTerminals = 0, NewNumTerminals = 0;
  /// True when the terminal universes are identical: same count and the
  /// map is the identity on ids (renames keep ids, so they qualify).
  /// Lookahead bitsets can then be copied verbatim instead of being
  /// translated element by element.
  bool TermMapIdentity = false;
  /// Per terminal id: unmatched terminal, or matched one whose
  /// (precedence level, associativity) pair differs numerically across
  /// the edit. Any conflict resolution consulting such a terminal must
  /// be re-derived rather than translated. Comparing raw levels is
  /// conservative under level renumbering, which only costs reuse.
  std::vector<bool> TermPrecChangedOld, TermPrecChangedNew;
  /// Per production: unmapped, or mapped with a different effective
  /// %prec level. sameProduction deliberately ignores the precedence
  /// symbol (it never affects automaton structure), so a surviving
  /// production can still change its conflict-resolution inputs; table
  /// patching gates on this flag.
  std::vector<bool> ProdPrecChangedOld, ProdPrecChangedNew;

  /// Per symbol id: nonterminal whose own production block changed
  /// (terminals are never edited — a structural terminal change shows
  /// up as edited productions referencing it).
  std::vector<bool> EditedOld, EditedNew;
  /// Per symbol id: nonterminal whose slice reaches an edited one.
  std::vector<bool> AffectedOld, AffectedNew;
  /// Per production: left-hand side is affected (and therefore so is
  /// anything its right-hand side can derive).
  std::vector<bool> ProdAffectedOld, ProdAffectedNew;

  Symbol mapSymbol(Symbol S) const {
    if (!S.valid() || unsigned(S.id()) >= SymbolMap.size())
      return Symbol();
    int32_t Id = SymbolMap[S.id()];
    return Id < 0 ? Symbol() : Symbol(Id);
  }
  Symbol invMapSymbol(Symbol S) const {
    if (!S.valid() || unsigned(S.id()) >= InvSymbolMap.size())
      return Symbol();
    int32_t Id = InvSymbolMap[S.id()];
    return Id < 0 ? Symbol() : Symbol(Id);
  }
  /// \returns the new index of old production \p P, or -1.
  int32_t mapProd(unsigned P) const {
    return P < ProdMap.size() ? ProdMap[P] : -1;
  }
  /// \returns the old index of new production \p P, or -1.
  int32_t invMapProd(unsigned P) const {
    return P < InvProdMap.size() ? InvProdMap[P] : -1;
  }

  /// Translates an old-universe terminal bitset into the new universe
  /// through the symbol map. \returns false — leaving \p Out untouched —
  /// when any element is unmapped (the set mentions a removed terminal);
  /// on success \p Out is a set over NewNumTerminals with exactly the
  /// mapped elements.
  bool translateTerminalSet(const IndexSet &OldSet, IndexSet &Out) const;
};

/// Computes the delta from \p Old to \p New. The slice indices must be
/// over the respective grammars; they supply the reachability closures
/// behind the affected sets.
GrammarDelta computeGrammarDelta(const Grammar &Old,
                                 const SubGrammarIndex &OldSlices,
                                 const Grammar &New,
                                 const SubGrammarIndex &NewSlices);

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_GRAMMARDELTA_H
