//===- grammar/Analysis.h - Nullable / FIRST / yield analyses --*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard grammar analyses shared by the LR construction and the
/// counterexample searches: nullability, FIRST sets, the precise follow
/// computation of paper §4 (followL), symbol reachability/productivity, and
/// minimal terminal-yield lengths (used to prefer short completions).
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_GRAMMAR_ANALYSIS_H
#define LALRCEX_GRAMMAR_ANALYSIS_H

#include "grammar/Grammar.h"
#include "support/IndexSet.h"
#include "support/TerminalSetPool.h"

#include <limits>
#include <vector>

namespace lalrcex {

class MetricsRegistry;
class TraceRecorder;

/// Precomputed analyses over a Grammar. The referenced grammar must outlive
/// the analysis object.
class GrammarAnalysis {
public:
  static constexpr unsigned Infinite = std::numeric_limits<unsigned>::max();

  /// \p Metrics / \p Trace, when non-null, record the construction's wall
  /// time and the pass count of each fixpoint (analysis.* counters).
  explicit GrammarAnalysis(const Grammar &G,
                           MetricsRegistry *Metrics = nullptr,
                           TraceRecorder *Trace = nullptr);

  const Grammar &grammar() const { return G; }

  /// \returns true if \p S can derive the empty string (always false for
  /// terminals).
  bool isNullable(Symbol S) const { return Nullable[S.id()]; }

  /// \returns true if every symbol of \p Syms[From..] is nullable.
  bool sequenceNullable(const std::vector<Symbol> &Syms,
                        size_t From = 0) const;

  /// FIRST(\p S) as a set of terminal ids. For a terminal this is the
  /// singleton {S}.
  const IndexSet &first(Symbol S) const { return First[S.id()]; }

  /// FIRST of the sequence \p Syms[From..]; if the whole sequence is
  /// nullable and \p Tail is non-null, \p Tail is unioned in. This is
  /// exactly the followL computation of paper §4 when \p Tail is the
  /// surrounding precise lookahead set.
  IndexSet firstOfSequence(const std::vector<Symbol> &Syms, size_t From,
                           const IndexSet *Tail = nullptr) const;

  /// \returns true if terminal \p T can be the first terminal of a
  /// derivation of \p Syms[From..] (or, when the sequence is nullable and
  /// \p Tail is non-null, T is in \p Tail).
  bool sequenceCanBeginWith(const std::vector<Symbol> &Syms, size_t From,
                            Symbol T, const IndexSet *Tail = nullptr) const;

  /// The frozen pool holding every FIRST and suffix-FIRST set, interned
  /// once at construction. Searches extend it with thread-local overlays
  /// (TerminalSetPool::overlay) so pooled ids stay valid across layers.
  const TerminalSetPool &pool() const { return Pool; }

  /// Pooled FIRST(\p S).
  TerminalSetPool::SetId firstId(Symbol S) const { return FirstIds[S.id()]; }

  /// Pooled FIRST of production \p ProdIndex's right-hand side from
  /// position \p Dot (no tail). Memoized: this is a table lookup, where
  /// firstOfSequence rescans the suffix on every call. Combine with
  /// suffixNullable and a pooled union for the full followL of paper §4:
  ///   followL = suffix-FIRST ∪ (suffix nullable ? tail : ∅).
  TerminalSetPool::SetId firstOfSequenceId(unsigned ProdIndex,
                                           unsigned Dot) const {
    return SuffixFirstIds[SuffixOffset[ProdIndex] + Dot];
  }

  /// \returns true if every symbol of production \p ProdIndex's right-hand
  /// side from position \p Dot is nullable. Memoized sequenceNullable.
  bool suffixNullable(unsigned ProdIndex, unsigned Dot) const {
    return SuffixNullableBits[SuffixOffset[ProdIndex] + Dot];
  }

  /// Memoized O(1) form of sequenceCanBeginWith for a production suffix:
  /// true if terminal \p T can begin a derivation of Rhs[Dot..] (or the
  /// suffix is nullable and \p Tail contains T).
  bool suffixCanBeginWith(unsigned ProdIndex, unsigned Dot, Symbol T,
                          const IndexSet *Tail = nullptr) const {
    assert(G.isTerminal(T) && "expected a terminal");
    if (Pool.contains(firstOfSequenceId(ProdIndex, Dot), T.id()))
      return true;
    return suffixNullable(ProdIndex, Dot) && Tail && Tail->contains(T.id());
  }

  /// Length of the shortest terminal string derivable from \p S
  /// (1 for terminals); Infinite if \p S is unproductive.
  unsigned minYieldLength(Symbol S) const { return MinYield[S.id()]; }

  /// Length of the shortest terminal string derivable from the whole
  /// right-hand side of production \p ProdIndex; Infinite if unproductive.
  unsigned minProductionYield(unsigned ProdIndex) const {
    return MinProdYield[ProdIndex];
  }

  /// Index of a production of \p Nonterminal achieving minYieldLength;
  /// only valid when the nonterminal is productive.
  unsigned minProduction(Symbol Nonterminal) const;

  /// \returns true if \p S derives at least one terminal string.
  bool isProductive(Symbol S) const { return MinYield[S.id()] != Infinite; }

  /// \returns true if \p S appears in some sentential form derived from
  /// the start symbol.
  bool isReachable(Symbol S) const { return Reachable[S.id()]; }

  /// Classical FOLLOW(\p Nonterminal): terminals that can appear
  /// immediately after it in some sentential form (the end-of-input
  /// terminal included where applicable). LALR lookaheads are always
  /// subsets of these sets.
  const IndexSet &follow(Symbol Nonterminal) const {
    assert(G.isNonterminal(Nonterminal) && "expected a nonterminal");
    return Follow[Nonterminal.id()];
  }

private:
  unsigned computeNullable();
  unsigned computeFirst();
  unsigned computeFollow();
  unsigned computeMinYield();
  void computeReachable();
  void buildPool();

  const Grammar &G;
  std::vector<bool> Nullable;      // indexed by symbol id
  std::vector<IndexSet> First;     // indexed by symbol id
  std::vector<IndexSet> Follow;    // indexed by symbol id (nonterminals)
  std::vector<unsigned> MinYield;  // indexed by symbol id
  std::vector<unsigned> MinProdYield; // indexed by production
  std::vector<unsigned> MinProd;   // indexed by nonterminal offset
  std::vector<bool> Reachable;     // indexed by symbol id

  /// Hash-consed terminal sets; frozen once construction finishes.
  TerminalSetPool Pool;
  std::vector<TerminalSetPool::SetId> FirstIds; // indexed by symbol id
  /// Per-(production, dot) memo tables, flattened; production P's row
  /// starts at SuffixOffset[P] and has rhs-length + 1 entries.
  std::vector<unsigned> SuffixOffset;
  std::vector<TerminalSetPool::SetId> SuffixFirstIds;
  std::vector<bool> SuffixNullableBits;
};

} // namespace lalrcex

#endif // LALRCEX_GRAMMAR_ANALYSIS_H
