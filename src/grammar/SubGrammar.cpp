//===- grammar/SubGrammar.cpp ----------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "grammar/SubGrammar.h"

#include <algorithm>
#include <cassert>

using namespace lalrcex;

unsigned SubGrammarIndex::ntIndex(Symbol S) const {
  assert(G.isNonterminal(S) && "expected a nonterminal");
  return unsigned(S.id()) - G.numTerminals();
}

SubGrammarIndex::SubGrammarIndex(const Grammar &InG)
    : G(InG), NumNts(InG.numNonterminals()),
      Words((NumNts + 63) / 64) {
  Closure.assign(size_t(NumNts) * Words, 0);

  // Seed: each nonterminal reaches itself and every nonterminal on the
  // right-hand side of its productions.
  auto set = [&](unsigned Row, unsigned Bit) {
    Closure[size_t(Row) * Words + Bit / 64] |= uint64_t(1) << (Bit % 64);
  };
  for (unsigned N = 0; N != NumNts; ++N) {
    set(N, N);
    Symbol Nt(int32_t(G.numTerminals() + N));
    for (unsigned P : G.productionsOf(Nt))
      for (Symbol S : G.production(P).Rhs)
        if (G.isNonterminal(S))
          set(N, ntIndex(S));
  }

  // Transitive closure by word-parallel row unions until a fixpoint: when
  // row i has bit j set, fold row j into row i. Grammars here are at most
  // a few thousand nonterminals, so the dense fixpoint is cheap.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned N = 0; N != NumNts; ++N) {
      uint64_t *Row = Closure.data() + size_t(N) * Words;
      for (unsigned J = 0; J != NumNts; ++J) {
        if (J == N || !(Row[J / 64] >> (J % 64) & 1))
          continue;
        const uint64_t *Other = closureWords(J);
        for (unsigned W = 0; W != Words; ++W) {
          uint64_t Merged = Row[W] | Other[W];
          if (Merged != Row[W]) {
            Row[W] = Merged;
            Changed = true;
          }
        }
      }
    }
  }
}

bool SubGrammarIndex::reaches(Symbol From, Symbol To) const {
  unsigned Bit = ntIndex(To);
  return closureWords(ntIndex(From))[Bit / 64] >> (Bit % 64) & 1;
}

std::vector<Symbol> SubGrammarIndex::slice(Symbol Root) const {
  return slice(std::vector<Symbol>{Root});
}

std::vector<Symbol>
SubGrammarIndex::slice(const std::vector<Symbol> &Roots) const {
  std::vector<uint64_t> Union(Words, 0);
  for (Symbol R : Roots) {
    const uint64_t *Row = closureWords(ntIndex(R));
    for (unsigned W = 0; W != Words; ++W)
      Union[W] |= Row[W];
  }
  std::vector<Symbol> Out;
  for (unsigned N = 0; N != NumNts; ++N)
    if (Union[N / 64] >> (N % 64) & 1)
      Out.push_back(Symbol(int32_t(G.numTerminals() + N)));
  return Out;
}

Fingerprint128 SubGrammarIndex::subGrammarHash(Symbol Root) const {
  // Canonical and name-based: slice nonterminals sorted by name, each
  // contributing its productions in declaration order as right-hand-side
  // name lists plus the explicit-or-default precedence symbol name. No
  // symbol ids, no production indices, no precedence levels — so the hash
  // survives any edit outside the slice, including edits that shift the
  // id universe.
  std::vector<Symbol> Slice = slice(Root);
  std::sort(Slice.begin(), Slice.end(), [&](Symbol A, Symbol B) {
    return G.name(A) < G.name(B);
  });
  StableHasher H;
  H.addString("lalrcex-subgrammar");
  H.addU32(unsigned(Slice.size()));
  for (Symbol Nt : Slice) {
    H.addString(G.name(Nt));
    const std::vector<unsigned> &Prods = G.productionsOf(Nt);
    H.addU32(unsigned(Prods.size()));
    for (unsigned P : Prods) {
      const Production &Prod = G.production(P);
      H.addU32(unsigned(Prod.Rhs.size()));
      for (Symbol S : Prod.Rhs)
        H.addString(G.name(S));
      H.addString(Prod.PrecSym.valid() ? G.name(Prod.PrecSym)
                                       : std::string());
    }
  }
  return H.finish();
}

Fingerprint128
SubGrammarIndex::idBoundSliceHash(const std::vector<Symbol> &Roots) const {
  // Structural and id-based: the slice as the automaton sees it. Names
  // and precedence are deliberately absent — conflict reports are a
  // function of automaton structure only (symbol names are re-rendered
  // from the live grammar; precedence only selects which conflicts are
  // reported, and the conflict record is part of the cache key).
  StableHasher H;
  H.addString("lalrcex-slice-id");
  std::vector<Symbol> Slice = slice(Roots);
  H.addU32(unsigned(Slice.size()));
  for (Symbol Nt : Slice) {
    H.addU32(uint32_t(Nt.id()));
    const std::vector<unsigned> &Prods = G.productionsOf(Nt);
    H.addU32(unsigned(Prods.size()));
    for (unsigned P : Prods) {
      const Production &Prod = G.production(P);
      H.addU32(P);
      H.addU32(unsigned(Prod.Rhs.size()));
      for (Symbol S : Prod.Rhs)
        H.addU32(uint32_t(S.id()));
    }
  }
  return H.finish();
}
