//===- support/Diagnostics.h - Structured frontend diagnostics -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics for the grammar frontend: line/column positions,
/// severities, stable codes, and caret-context snippets, collected under an
/// error cap so hostile inputs cannot balloon memory.
///
/// A DiagnosticEngine is bound to one source buffer. Reporting is cheap
/// (positions and messages only); the source line snippet and caret are
/// materialized lazily at render time, sanitized for control bytes and
/// truncated around the caret so multi-megabyte lines stay printable.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_DIAGNOSTICS_H
#define LALRCEX_SUPPORT_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lalrcex {

enum class DiagSeverity : unsigned char { Note, Warning, Error };

/// Returns "note" / "warning" / "error".
const char *diagSeverityName(DiagSeverity S);

/// One frontend diagnostic. Lines and columns are 1-based byte positions;
/// column 0 means "whole line" (no caret).
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  /// Stable machine-matchable code ("P102"); see Diag:: constants.
  std::string Code;
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;

  /// "line 3:14: error: unterminated quoted symbol [P102]".
  std::string header() const;
};

/// Stable diagnostic codes. Grouped: P0xx lexical, P1xx declaration
/// section, P2xx rules section, P9xx limits/internal.
namespace Diag {
inline constexpr const char *NulByte = "P001";
inline constexpr const char *UnexpectedChar = "P002";
inline constexpr const char *UnterminatedComment = "P003";
inline constexpr const char *UnterminatedQuote = "P004";
inline constexpr const char *UnterminatedAction = "P005";
inline constexpr const char *UnterminatedTag = "P006";
inline constexpr const char *UnterminatedAlias = "P007";
inline constexpr const char *UnterminatedPrologue = "P008";
inline constexpr const char *MissingSeparator = "P101";
inline constexpr const char *UnknownDirective = "P102";
inline constexpr const char *IgnoredDirective = "P103";
inline constexpr const char *BadDirectiveArg = "P104";
inline constexpr const char *DuplicateToken = "P105";
inline constexpr const char *BadRule = "P201";
inline constexpr const char *BadAlternative = "P202";
inline constexpr const char *BadPrec = "P203";
inline constexpr const char *StrayToken = "P204";
inline constexpr const char *BuildError = "P301";
inline constexpr const char *TooManyErrors = "P901";
inline constexpr const char *DepthLimit = "P902";
}; // namespace Diag

/// Collects diagnostics against one source buffer and renders them with
/// caret context. Not thread-safe; one engine per parse.
class DiagnosticEngine {
public:
  /// \p Source must outlive the engine (snippets are cut from it at
  /// render time). \p ErrorCap bounds the number of *errors* collected;
  /// once reached, further errors are dropped, a single P901 note records
  /// the truncation, and errorCapReached() turns true so the parser can
  /// stop early. Warnings and notes are bounded at 4x the cap.
  explicit DiagnosticEngine(std::string_view Source, size_t ErrorCap = 50);

  void report(DiagSeverity Severity, const char *Code, unsigned Line,
              unsigned Column, std::string Message);

  void error(const char *Code, unsigned Line, unsigned Column,
             std::string Message) {
    report(DiagSeverity::Error, Code, Line, Column, std::move(Message));
  }
  void warning(const char *Code, unsigned Line, unsigned Column,
               std::string Message) {
    report(DiagSeverity::Warning, Code, Line, Column, std::move(Message));
  }
  void note(const char *Code, unsigned Line, unsigned Column,
            std::string Message) {
    report(DiagSeverity::Note, Code, Line, Column, std::move(Message));
  }

  size_t errorCount() const { return Errors; }
  size_t warningCount() const { return Warnings; }
  bool errorCapReached() const { return Errors >= ErrorCap; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  std::vector<Diagnostic> take() { return std::move(Diags); }

  /// Renders one diagnostic with its caret snippet:
  ///   line 3:14: error: unterminated quoted symbol [P102]
  ///     expr : expr '+ expr
  ///                 ^
  std::string render(const Diagnostic &D) const;

  /// Renders every collected diagnostic, one per line group.
  std::string renderAll() const;

private:
  std::string_view Source;
  size_t ErrorCap;
  size_t Errors = 0;
  size_t Warnings = 0;
  bool CapNoted = false;
  std::vector<Diagnostic> Diags;
};

/// Renders \p D with a caret snippet cut from \p Source (standalone
/// helper; DiagnosticEngine::render forwards here).
std::string renderDiagnostic(const Diagnostic &D, std::string_view Source);

/// Renders a whole diagnostic list against \p Source.
std::string renderDiagnostics(const std::vector<Diagnostic> &Diags,
                              std::string_view Source);

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_DIAGNOSTICS_H
