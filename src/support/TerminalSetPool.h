//===- support/TerminalSetPool.h - Hash-consed terminal sets ---*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-consed, arena-backed pool of immutable terminal sets.
///
/// Lookahead sets are the hottest values in the whole pipeline: the LR
/// closure fixpoints merge them millions of times, and the
/// lookahead-sensitive search used to copy one per discovered vertex.
/// The pool interns every distinct set once and hands out a canonical
/// 32-bit SetId, so
///
///   - equality is an integer compare (two ids are equal iff the sets are),
///   - a "did this union change anything" fixpoint test is `NewId != OldId`,
///   - union and with-element results are cached by id pair, so the
///     re-merges an LR fixpoint performs over and over collapse into one
///     hash probe each,
///   - subset ("dominance") checks run word-parallel over the arena.
///
/// Sets of at most two elements — the overwhelming majority of lookahead
/// sets in real grammars — are encoded \e inline in the id itself (tag bit
/// plus two 15-bit element slots), so they occupy no arena storage and
/// never touch the intern table. Wider sets live in a fixed-stride word
/// arena indexed by id.
///
/// Pools layer: a frozen base pool (e.g. the grammar analysis's pool of
/// FIRST/suffix-FIRST sets) can be extended by any number of concurrent
/// \e overlay pools, one per search or construction pass. An overlay
/// reads the base read-only (thread-safe by construction) and appends its
/// own sets locally; ids are global across the chain, so a base id can be
/// unioned with an overlay id freely.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_TERMINALSETPOOL_H
#define LALRCEX_SUPPORT_TERMINALSETPOOL_H

#include "support/IndexSet.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <new>
#include <unordered_map>
#include <vector>

namespace lalrcex {

class ResourceGuard;

/// Word-level set kernels shared by the pool and the LSS dominance
/// frontiers. The portable implementations are written 4-wide and
/// autovectorize; on x86-64 an AVX2 version is selected once at startup
/// behind a runtime CPUID check, so the binary needs no -mavx2 baseline.
/// All loads are unaligned-safe (the pool's arena is 64-byte aligned, but
/// caller-owned mask buffers need not be).
namespace setkernel {

/// \returns true iff Sub ⊆ Super over \p Words words (Sub & ~Super == 0).
bool subsetScalar(const uint64_t *Sub, const uint64_t *Super, unsigned Words);
/// ORs \p Words words of \p Src into \p Dst.
void orIntoScalar(uint64_t *Dst, const uint64_t *Src, unsigned Words);

/// Whether the AVX2 variants below run vector code on this machine.
bool avx2Available();
/// AVX2 kernels; identical results to the scalar versions, falling back
/// to them when avx2Available() is false. Exposed for the equivalence
/// tests; hot paths go through the dispatched entry points.
bool subsetAvx2(const uint64_t *Sub, const uint64_t *Super, unsigned Words);
void orIntoAvx2(uint64_t *Dst, const uint64_t *Src, unsigned Words);

/// Dispatched entry points (resolved once per process).
bool subset(const uint64_t *Sub, const uint64_t *Super, unsigned Words);
void orInto(uint64_t *Dst, const uint64_t *Src, unsigned Words);

} // namespace setkernel

/// Growable 64-byte-aligned uint64_t buffer backing the wide-set arena.
/// std::vector makes no alignment promise beyond alignof(uint64_t); the
/// SIMD kernels want every set's words to start on a cache-line boundary
/// so a stride-4 row never splits lines. Append-only, like the arena.
class AlignedWordBuffer {
public:
  AlignedWordBuffer() = default;
  ~AlignedWordBuffer() { release(); }
  AlignedWordBuffer(AlignedWordBuffer &&O) noexcept
      : Data(O.Data), Count(O.Count), Cap(O.Cap) {
    O.Data = nullptr;
    O.Count = O.Cap = 0;
  }
  AlignedWordBuffer &operator=(AlignedWordBuffer &&O) noexcept {
    if (this != &O) {
      release();
      Data = O.Data;
      Count = O.Count;
      Cap = O.Cap;
      O.Data = nullptr;
      O.Count = O.Cap = 0;
    }
    return *this;
  }
  AlignedWordBuffer(const AlignedWordBuffer &) = delete;
  AlignedWordBuffer &operator=(const AlignedWordBuffer &) = delete;

  size_t size() const { return Count; }
  const uint64_t *data() const { return Data; }
  const uint64_t &operator[](size_t I) const {
    assert(I < Count);
    return Data[I];
  }

  void append(const uint64_t *W, size_t N) {
    if (Count + N > Cap)
      grow(Count + N);
    std::copy(W, W + N, Data + Count);
    Count += N;
  }

private:
  void grow(size_t Need) {
    size_t NewCap = std::max(Need, Cap ? Cap * 2 : size_t(64));
    auto *NewData = static_cast<uint64_t *>(::operator new(
        NewCap * sizeof(uint64_t), std::align_val_t(64)));
    std::copy(Data, Data + Count, NewData);
    release();
    Data = NewData;
    Cap = NewCap;
  }
  void release() {
    if (Data)
      ::operator delete(Data, std::align_val_t(64));
    Data = nullptr;
  }

  uint64_t *Data = nullptr;
  size_t Count = 0;
  size_t Cap = 0;
};

/// Hash-consed immutable terminal sets with cached binary operations.
class TerminalSetPool {
public:
  /// Canonical id of a pooled set. Ids with the top bit set are inline
  /// small sets (0-2 elements); other ids index the wide-set arena.
  using SetId = uint32_t;

  /// Creates a root pool over the universe {0, ..., UniverseSize - 1}.
  explicit TerminalSetPool(unsigned UniverseSize);

  /// Creates an overlay pool extending frozen \p Base. The base must not
  /// be mutated while any overlay of it is alive (freeze() enforces this
  /// in debug builds), but any number of overlays may read it
  /// concurrently. \p Guard, when given, is charged for arena and intern
  /// table growth.
  static TerminalSetPool overlay(const TerminalSetPool &Base,
                                 ResourceGuard *Guard = nullptr);

  TerminalSetPool(TerminalSetPool &&) = default;
  TerminalSetPool(const TerminalSetPool &) = delete;
  TerminalSetPool &operator=(const TerminalSetPool &) = delete;

  unsigned universeSize() const { return Universe; }

  /// Marks this pool immutable: any further interning attempt asserts.
  /// Call before sharing the pool across threads as an overlay base.
  void freeze() { Frozen = true; }
  bool frozen() const { return Frozen; }

  /// The canonical empty set (an inline id; no storage).
  SetId emptySet() const { return EmptyId; }

  /// The canonical singleton {Element}.
  SetId singleton(unsigned Element);

  /// Interns \p S (which must share this pool's universe size) and
  /// returns its canonical id.
  SetId intern(const IndexSet &S);

  /// The canonical id of A ∪ B. Results are cached per unordered id pair.
  SetId unionSets(SetId A, SetId B);

  /// The canonical id of A ∪ {Element}. Cached per (id, element).
  SetId withElement(SetId A, unsigned Element);

  bool contains(SetId A, unsigned Element) const;

  /// \returns true if B ⊆ A (word-level when either side is wide).
  bool containsAll(SetId A, SetId B) const;

  /// Meaningful (universe-covering) words per set.
  unsigned wordsPerSet() const { return WordsPerSet; }

  /// Words a raw-mask consumer must allocate per set: the arena stride,
  /// which pads wide universes up to a multiple of four words so the
  /// batched kernels never need a scalar tail. Padding words are always
  /// zero, on both the arena side and (by the caller's contract) the mask
  /// side, so subset checks over the full stride are exact.
  unsigned maskWords() const { return StrideWords; }

  /// \returns true if every element of \p A is set in \p Mask, a raw
  /// maskWords()-word bitmask. Fast-path support for callers keeping
  /// per-bucket accumulator masks (the LSS dominance frontiers).
  bool coveredByWords(SetId A, const uint64_t *Mask) const;

  /// ORs \p A's elements into \p Mask (maskWords() words).
  void addToWords(SetId A, uint64_t *Mask) const;

  bool empty(SetId A) const { return A == EmptyId; }

  /// Number of elements in the set.
  unsigned count(SetId A) const;

  /// Calls \p Fn with every element, in increasing order.
  template <typename Callable> void forEach(SetId A, Callable Fn) const {
    if (A & InlineTag) {
      unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
      if (Lo != SlotEmpty)
        Fn(Lo);
      if (Hi != SlotEmpty)
        Fn(Hi);
      return;
    }
    const uint64_t *W = wordsOf(A);
    for (unsigned I = 0; I != WordsPerSet; ++I) {
      uint64_t Word = W[I];
      while (Word) {
        Fn(unsigned(I * 64 + __builtin_ctzll(Word)));
        Word &= Word - 1;
      }
    }
  }

  /// Copies the set out as a standalone IndexSet over this universe.
  IndexSet materialize(SetId A) const;

  /// Copies the set into an IndexSet over a (not smaller) universe
  /// \p UniverseOverride; every element must fit.
  IndexSet materialize(SetId A, unsigned UniverseOverride) const;

  /// Observability for `-lss-stats` and the pool benchmarks.
  struct Stats {
    size_t WideSets = 0;       ///< interned wide sets in this pool layer
    size_t ArenaBytes = 0;     ///< word-arena bytes in this pool layer
    size_t InternProbes = 0;   ///< intern() calls that hashed (wide sets)
    size_t UnionCalls = 0;     ///< unionSets() calls past the fast paths
    size_t UnionCacheHits = 0; ///< of which answered from the pair cache
    size_t WithElementCalls = 0;
    size_t WithElementCacheHits = 0;
    size_t SubsetChecks = 0;   ///< containsAll() calls (dominance probes)
  };
  const Stats &stats() const { return Counters; }

private:
  // Inline encoding: top bit tags the id, two 15-bit slots hold the
  // elements sorted ascending, SlotEmpty marks an unused slot. Disabled
  // (every set wide) when the universe does not fit 15-bit elements.
  static constexpr SetId InlineTag = 0x80000000u;
  static constexpr unsigned SlotBits = 15;
  static constexpr unsigned SlotMask = (1u << SlotBits) - 1;
  static constexpr unsigned SlotEmpty = SlotMask;
  static constexpr SetId EmptyInlineId =
      InlineTag | (SlotEmpty << SlotBits) | SlotEmpty;

  TerminalSetPool(const TerminalSetPool *Base, ResourceGuard *Guard);

  bool inlineEnabled() const { return Universe < SlotEmpty; }
  static bool isInline(SetId A) { return (A & InlineTag) != 0; }
  SetId makeInline(unsigned Lo, unsigned Hi) const {
    return InlineTag | (Hi << SlotBits) | Lo;
  }

  /// Words of wide set \p A, resolving through the base chain.
  const uint64_t *wordsOf(SetId A) const;

  /// Interns the wide-set scratch buffer (Scratch) and returns its id;
  /// demotes to an inline id when the contents fit.
  SetId internScratch();

  /// Looks up a wide set equal to Scratch in this layer and all bases.
  SetId findScratch(uint64_t Hash) const;
  SetId findScratchLocal(uint64_t Hash) const;

  uint64_t hashWords(const uint64_t *W) const;
  bool equalsScratch(SetId A) const;
  void loadScratch(SetId A) const;
  void chargeGrowth(size_t Bytes);

  unsigned Universe;
  unsigned WordsPerSet;
  /// Arena stride: WordsPerSet padded to a multiple of 4 for universes
  /// wide enough to profit (> 2 words); padding words stay zero.
  unsigned StrideWords;
  const TerminalSetPool *Base = nullptr;
  /// First wide id owned by this layer (== number of wide sets below).
  uint32_t FirstLocalId = 0;
  bool Frozen = false;
  ResourceGuard *Guard = nullptr;
  /// Empty-set id: inline when enabled, otherwise the first wide set.
  SetId EmptyId;

  /// Fixed-stride arena: wide set (id - FirstLocalId) occupies words
  /// [(id - FirstLocalId) * StrideWords, ...), cache-line aligned.
  AlignedWordBuffer Arena;
  /// Wide-set intern index: content hash -> ids with that hash.
  std::unordered_multimap<uint64_t, SetId> Intern;
  /// Operation caches keyed by id pair / (id, element).
  std::unordered_map<uint64_t, SetId> UnionCache;
  std::unordered_map<uint64_t, SetId> WithElementCache;
  /// Scratch words for building candidate sets without allocating.
  mutable std::vector<uint64_t> Scratch;

  /// Mutable so const observers (containsAll) can still count probes.
  mutable Stats Counters;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_TERMINALSETPOOL_H
