//===- support/IndexSet.h - Dynamic bit set over small indices -*- C++ -*-===//
//
// Part of lalrcex, a reproduction of "Finding Counterexamples from Parsing
// Conflicts" (Isradisaikul & Myers, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact dynamically-sized bit set keyed by non-negative indices.
///
/// Terminal lookahead sets are the hottest data structure in the
/// counterexample search: they are copied, merged, hashed, and compared
/// millions of times. IndexSet stores bits in a small inline vector of
/// 64-bit words and provides the exact operations the search needs.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_INDEXSET_H
#define LALRCEX_SUPPORT_INDEXSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lalrcex {

/// A dynamically-sized set of small non-negative integers backed by a bit
/// vector. All sets participating in a binary operation must have been
/// created with the same universe size.
class IndexSet {
public:
  IndexSet() = default;

  /// Creates an empty set over the universe {0, ..., \p UniverseSize - 1}.
  explicit IndexSet(unsigned UniverseSize)
      : Words((UniverseSize + 63) / 64, 0), Universe(UniverseSize) {}

  /// Creates a singleton set over the given universe.
  static IndexSet singleton(unsigned UniverseSize, unsigned Element) {
    IndexSet S(UniverseSize);
    S.insert(Element);
    return S;
  }

  unsigned universeSize() const { return Universe; }

  bool contains(unsigned Element) const {
    assert(Element < Universe && "element outside universe");
    return (Words[Element / 64] >> (Element % 64)) & 1;
  }

  void insert(unsigned Element) {
    assert(Element < Universe && "element outside universe");
    Words[Element / 64] |= uint64_t(1) << (Element % 64);
  }

  void erase(unsigned Element) {
    assert(Element < Universe && "element outside universe");
    Words[Element / 64] &= ~(uint64_t(1) << (Element % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  /// Number of elements in the set.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Unions \p Other into this set. \returns true if this set changed.
  bool unionWith(const IndexSet &Other) {
    assert(Universe == Other.Universe && "universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Intersects this set with \p Other in place.
  void intersectWith(const IndexSet &Other) {
    assert(Universe == Other.Universe && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
  }

  /// \returns true if this set and \p Other share at least one element.
  bool intersects(const IndexSet &Other) const {
    assert(Universe == Other.Universe && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  /// \returns true if every element of this set is also in \p Other.
  bool isSubsetOf(const IndexSet &Other) const {
    assert(Universe == Other.Universe && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & ~Other.Words[I])
        return false;
    return true;
  }

  bool operator==(const IndexSet &Other) const {
    return Universe == Other.Universe && Words == Other.Words;
  }
  bool operator!=(const IndexSet &Other) const { return !(*this == Other); }

  /// Calls \p Fn with every element, in increasing order.
  template <typename Callable> void forEach(Callable Fn) const {
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        Fn(unsigned(I * 64 + Bit));
        W &= W - 1;
      }
    }
  }

  /// The smallest element, or the universe size if the set is empty.
  unsigned firstElement() const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return unsigned(I * 64 + __builtin_ctzll(Words[I]));
    return Universe;
  }

  /// Collects the elements into a vector, in increasing order.
  std::vector<unsigned> elements() const;

  /// Raw word storage, for word-level consumers (TerminalSetPool).
  const uint64_t *words() const { return Words.data(); }
  size_t wordCount() const { return Words.size(); }

  /// A stable hash of the set contents, suitable for unordered containers.
  size_t hash() const {
    size_t H = 0x9e3779b97f4a7c15ULL;
    for (uint64_t W : Words)
      H = H * 0x100000001b3ULL ^ W;
    return H;
  }

private:
  std::vector<uint64_t> Words;
  unsigned Universe = 0;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_INDEXSET_H
