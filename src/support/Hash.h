//===- support/Hash.h - Stable 128-bit content hashing ---------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming, platform-stable 128-bit hash used for content-addressing
/// the persistent analysis cache.
///
/// Stability is the whole point: the same logical input must fingerprint
/// identically across processes, platforms, and compilers, so blobs
/// written by one run are found by the next. Callers therefore feed
/// explicit fields (integers in a fixed little-endian encoding,
/// length-prefixed strings), never raw struct memory, and std::hash is
/// never involved. The mixing is a two-lane multiply-xor-rotate
/// construction in the xxHash/SplitMix family: not cryptographic, but
/// with strong avalanche over 128 bits — ample for distinguishing
/// grammars, where a collision merely serves a stale analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_HASH_H
#define LALRCEX_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace lalrcex {

/// A 128-bit content fingerprint; value-comparable and hex-renderable
/// (used as the cache's file name, so the cache is content-addressed).
struct Fingerprint128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Fingerprint128 &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Fingerprint128 &O) const { return !(*this == O); }

  /// 32 lowercase hex digits, Hi lane first.
  std::string hex() const;
};

/// Streaming stable hasher (see file comment). Feed fields, then
/// finish(); finish() may be called repeatedly and does not perturb the
/// stream state.
class StableHasher {
public:
  StableHasher();

  void addBytes(const void *Data, size_t Size);
  void addU8(uint8_t V) { addBytes(&V, 1); }
  void addU32(uint32_t V);
  void addU64(uint64_t V);
  /// Doubles hash by IEEE-754 bit pattern, so -0.0 != 0.0 and every NaN
  /// payload is distinct; what matters is that equal stored values hash
  /// equally.
  void addF64(double V);
  /// Length-prefixed, so ("ab","c") never collides with ("a","bc").
  void addString(const std::string &S);

  Fingerprint128 finish() const;

private:
  void mixWord(uint64_t W);

  uint64_t A, B;
  uint64_t Length = 0;
  uint8_t Pending[8];
  unsigned PendingLen = 0;
};

/// One-shot convenience, used for blob checksums.
Fingerprint128 fingerprintBytes(const void *Data, size_t Size);

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_HASH_H
