//===- support/Diagnostics.cpp --------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <algorithm>
#include <cctype>

using namespace lalrcex;

const char *lalrcex::diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::header() const {
  std::string Out = "line " + std::to_string(Line);
  if (Column > 0)
    Out += ":" + std::to_string(Column);
  Out += ": ";
  Out += diagSeverityName(Severity);
  Out += ": ";
  Out += Message;
  if (!Code.empty())
    Out += " [" + Code + "]";
  return Out;
}

DiagnosticEngine::DiagnosticEngine(std::string_view Source, size_t ErrorCap)
    : Source(Source), ErrorCap(ErrorCap == 0 ? 1 : ErrorCap) {}

void DiagnosticEngine::report(DiagSeverity Severity, const char *Code,
                              unsigned Line, unsigned Column,
                              std::string Message) {
  if (Severity == DiagSeverity::Error) {
    if (Errors >= ErrorCap) {
      if (!CapNoted) {
        CapNoted = true;
        Diags.push_back(Diagnostic{DiagSeverity::Note, Diag::TooManyErrors,
                                   Line, Column,
                                   "too many errors (cap " +
                                       std::to_string(ErrorCap) +
                                       "); further errors suppressed"});
      }
      ++Errors; // still counted, just not stored
      return;
    }
    ++Errors;
  } else {
    // Warnings and notes ride the same cap, scaled, so a pathological
    // input cannot grow the list without bound through warnings alone.
    if (Diags.size() >= ErrorCap * 4)
      return;
    if (Severity == DiagSeverity::Warning)
      ++Warnings;
  }
  Diags.push_back(
      Diagnostic{Severity, Code ? Code : "", Line, Column, std::move(Message)});
}

namespace {

/// Replaces control bytes so a snippet is always printable on one line.
char sanitizeByte(char C) {
  unsigned char U = static_cast<unsigned char>(C);
  if (U == '\t')
    return ' ';
  if (U < 0x20 || U == 0x7F)
    return '?';
  return C;
}

/// Cuts line \p Line (1-based) out of \p Source, tolerating \r\n and a
/// missing trailing newline. Returns false when the line does not exist.
bool extractLine(std::string_view Source, unsigned Line,
                 std::string_view &Out) {
  if (Line == 0)
    return false;
  size_t Start = 0;
  for (unsigned L = 1; L < Line; ++L) {
    size_t Nl = Source.find('\n', Start);
    if (Nl == std::string_view::npos)
      return false;
    Start = Nl + 1;
  }
  size_t End = Source.find('\n', Start);
  if (End == std::string_view::npos)
    End = Source.size();
  while (End > Start && Source[End - 1] == '\r')
    --End;
  Out = Source.substr(Start, End - Start);
  return true;
}

} // namespace

std::string lalrcex::renderDiagnostic(const Diagnostic &D,
                                      std::string_view Source) {
  std::string Out = D.header();
  std::string_view LineText;
  if (!extractLine(Source, D.Line, LineText))
    return Out + "\n";
  // Window the snippet around the caret so multi-megabyte lines render
  // in bounded space.
  constexpr size_t MaxWidth = 80;
  size_t Col = D.Column > 0 ? D.Column - 1 : 0;
  if (Col > LineText.size())
    Col = LineText.size();
  size_t WindowStart = 0;
  bool ClippedLeft = false, ClippedRight = false;
  if (LineText.size() > MaxWidth) {
    if (Col > MaxWidth / 2) {
      WindowStart = Col - MaxWidth / 2;
      ClippedLeft = true;
    }
    if (WindowStart + MaxWidth < LineText.size())
      ClippedRight = true;
    LineText = LineText.substr(WindowStart, MaxWidth);
  }
  std::string Snippet;
  Snippet.reserve(LineText.size() + 8);
  if (ClippedLeft)
    Snippet += "...";
  for (char C : LineText)
    Snippet += sanitizeByte(C);
  if (ClippedRight)
    Snippet += "...";
  Out += "\n  " + Snippet + "\n";
  if (D.Column > 0) {
    size_t CaretPos = (Col - WindowStart) + (ClippedLeft ? 3 : 0);
    Out += "  " + std::string(CaretPos, ' ') + "^\n";
  }
  return Out;
}

std::string lalrcex::renderDiagnostics(const std::vector<Diagnostic> &Diags,
                                       std::string_view Source) {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += renderDiagnostic(D, Source);
  return Out;
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  return renderDiagnostic(D, Source);
}

std::string DiagnosticEngine::renderAll() const {
  return renderDiagnostics(Diags, Source);
}
