//===- support/TerminalSetPool.cpp - Hash-consed terminal sets ------------===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/TerminalSetPool.h"

#include "support/Budget.h"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LALRCEX_SETKERNEL_X86 1
#include <immintrin.h>
#else
#define LALRCEX_SETKERNEL_X86 0
#endif

namespace lalrcex {

// Alignment/UB audit (pre-vectorization): every access to the word arena
// is element-typed (uint64_t lvalues) — there were and are no
// reinterpret_casts punning wider types onto vector<uint64_t> storage, so
// the scalar paths were already UB-free. The AVX2 path below only ever
// touches memory through _mm256_loadu_si256 / _mm256_storeu_si256, the
// sanctioned unaligned intrinsics, so it is correct even for
// caller-owned mask buffers with no alignment promise; the pool's own
// arena is additionally 64-byte aligned (AlignedWordBuffer) so arena rows
// get aligned-speed loads and never split cache lines.
namespace setkernel {

bool subsetScalar(const uint64_t *Sub, const uint64_t *Super,
                  unsigned Words) {
  // 4-wide accumulation with one branch per block: autovectorizes under
  // -O2 and keeps the scalar fallback within a few percent of AVX2.
  uint64_t Stray = 0;
  unsigned I = 0;
  for (; I + 4 <= Words; I += 4) {
    Stray |= Sub[I] & ~Super[I];
    Stray |= Sub[I + 1] & ~Super[I + 1];
    Stray |= Sub[I + 2] & ~Super[I + 2];
    Stray |= Sub[I + 3] & ~Super[I + 3];
    if (Stray)
      return false;
  }
  for (; I != Words; ++I)
    Stray |= Sub[I] & ~Super[I];
  return Stray == 0;
}

void orIntoScalar(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  unsigned I = 0;
  for (; I + 4 <= Words; I += 4) {
    Dst[I] |= Src[I];
    Dst[I + 1] |= Src[I + 1];
    Dst[I + 2] |= Src[I + 2];
    Dst[I + 3] |= Src[I + 3];
  }
  for (; I != Words; ++I)
    Dst[I] |= Src[I];
}

#if LALRCEX_SETKERNEL_X86

namespace {
bool detectAvx2() { return __builtin_cpu_supports("avx2"); }
const bool HaveAvx2 = detectAvx2();
} // namespace

bool avx2Available() { return HaveAvx2; }

__attribute__((target("avx2"))) static bool
subsetAvx2Impl(const uint64_t *Sub, const uint64_t *Super, unsigned Words) {
  unsigned I = 0;
  for (; I + 4 <= Words; I += 4) {
    __m256i VSub =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Sub + I));
    __m256i VSuper =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Super + I));
    // testc(Super, Sub) == 1 iff (~Super & Sub) is all zero.
    if (!_mm256_testc_si256(VSuper, VSub))
      return false;
  }
  uint64_t Stray = 0;
  for (; I != Words; ++I)
    Stray |= Sub[I] & ~Super[I];
  return Stray == 0;
}

__attribute__((target("avx2"))) static void
orIntoAvx2Impl(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  unsigned I = 0;
  for (; I + 4 <= Words; I += 4) {
    __m256i VDst =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i VSrc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_or_si256(VDst, VSrc));
  }
  for (; I != Words; ++I)
    Dst[I] |= Src[I];
}

bool subsetAvx2(const uint64_t *Sub, const uint64_t *Super, unsigned Words) {
  return HaveAvx2 ? subsetAvx2Impl(Sub, Super, Words)
                  : subsetScalar(Sub, Super, Words);
}

void orIntoAvx2(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  if (HaveAvx2)
    orIntoAvx2Impl(Dst, Src, Words);
  else
    orIntoScalar(Dst, Src, Words);
}

bool subset(const uint64_t *Sub, const uint64_t *Super, unsigned Words) {
  return HaveAvx2 ? subsetAvx2Impl(Sub, Super, Words)
                  : subsetScalar(Sub, Super, Words);
}

void orInto(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  if (HaveAvx2)
    orIntoAvx2Impl(Dst, Src, Words);
  else
    orIntoScalar(Dst, Src, Words);
}

#else // !LALRCEX_SETKERNEL_X86

bool avx2Available() { return false; }

bool subsetAvx2(const uint64_t *Sub, const uint64_t *Super, unsigned Words) {
  return subsetScalar(Sub, Super, Words);
}

void orIntoAvx2(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  orIntoScalar(Dst, Src, Words);
}

bool subset(const uint64_t *Sub, const uint64_t *Super, unsigned Words) {
  return subsetScalar(Sub, Super, Words);
}

void orInto(uint64_t *Dst, const uint64_t *Src, unsigned Words) {
  orIntoScalar(Dst, Src, Words);
}

#endif // LALRCEX_SETKERNEL_X86

} // namespace setkernel

namespace {
/// Sentinel for "no such interned set". Inline ids never set bit 30 and
/// wide ids never set bit 31, so all-ones is unused by both encodings.
constexpr TerminalSetPool::SetId InvalidId = 0xFFFFFFFFu;

/// Arena stride for a set of \p Words meaningful words: small universes
/// (<= 2 words, i.e. <= 128 terminals) keep their exact width so the
/// common case pays nothing; wider universes round up to a multiple of 4
/// so the batched kernels run without a scalar tail.
unsigned strideFor(unsigned Words) {
  return Words <= 2 ? Words : (Words + 3) & ~3u;
}
} // namespace

TerminalSetPool::TerminalSetPool(unsigned UniverseSize)
    : Universe(UniverseSize), WordsPerSet((UniverseSize + 63) / 64),
      StrideWords(strideFor(WordsPerSet)) {
  Scratch.resize(StrideWords);
  if (inlineEnabled()) {
    EmptyId = EmptyInlineId;
  } else {
    // No inline encoding: the empty set is the pool's first wide set.
    std::fill(Scratch.begin(), Scratch.end(), 0);
    EmptyId = internScratch();
  }
}

TerminalSetPool::TerminalSetPool(const TerminalSetPool *BasePool,
                                 ResourceGuard *G)
    : Universe(BasePool->Universe), WordsPerSet(BasePool->WordsPerSet),
      StrideWords(BasePool->StrideWords), Base(BasePool),
      FirstLocalId(BasePool->FirstLocalId +
                   uint32_t(BasePool->Counters.WideSets)),
      Guard(G), EmptyId(BasePool->EmptyId) {
  Scratch.resize(StrideWords);
}

TerminalSetPool TerminalSetPool::overlay(const TerminalSetPool &Base,
                                         ResourceGuard *Guard) {
  assert(Base.frozen() && "overlay base must be frozen first");
  return TerminalSetPool(&Base, Guard);
}

const uint64_t *TerminalSetPool::wordsOf(SetId A) const {
  assert(!isInline(A) && "inline sets have no arena words");
  const TerminalSetPool *P = this;
  while (A < P->FirstLocalId) {
    P = P->Base;
    assert(P && "wide id below the root pool");
  }
  return &P->Arena[size_t(A - P->FirstLocalId) * StrideWords];
}

void TerminalSetPool::loadScratch(SetId A) const {
  if (isInline(A)) {
    std::fill(Scratch.begin(), Scratch.end(), 0);
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Scratch[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Scratch[Hi / 64] |= uint64_t(1) << (Hi % 64);
    return;
  }
  const uint64_t *W = wordsOf(A);
  // Copy the full stride: arena padding words are zero, so this keeps the
  // scratch-padding-is-zero invariant that makes stride-wide compares and
  // hashes exact.
  std::copy(W, W + StrideWords, Scratch.begin());
}

uint64_t TerminalSetPool::hashWords(const uint64_t *W) const {
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (unsigned I = 0; I != WordsPerSet; ++I)
    H = (H ^ W[I]) * 0x100000001b3ULL;
  return H;
}

bool TerminalSetPool::equalsScratch(SetId A) const {
  const uint64_t *W = wordsOf(A);
  return std::equal(W, W + WordsPerSet, Scratch.begin());
}

TerminalSetPool::SetId TerminalSetPool::findScratchLocal(uint64_t Hash) const {
  auto [It, End] = Intern.equal_range(Hash);
  for (; It != End; ++It)
    if (equalsScratch(It->second))
      return It->second;
  return InvalidId;
}

TerminalSetPool::SetId TerminalSetPool::findScratch(uint64_t Hash) const {
  // Probe the frozen base chain first so an overlay never re-interns a set
  // the base already owns (canonical ids are global across the chain).
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    SetId Found = P->findScratchLocal(Hash);
    if (Found != InvalidId)
      return Found;
  }
  return InvalidId;
}

void TerminalSetPool::chargeGrowth(size_t Bytes) {
  // A tripped memory budget is observed by the search's own guard polls;
  // the pool itself keeps functioning so degradation stays graceful.
  if (Guard)
    Guard->chargeBytes(Bytes);
}

TerminalSetPool::SetId TerminalSetPool::internScratch() {
  if (inlineEnabled()) {
    // Demote to the inline encoding when at most two bits are set.
    unsigned Elems[3];
    unsigned N = 0;
    for (unsigned I = 0; I != WordsPerSet && N <= 2; ++I) {
      uint64_t Word = Scratch[I];
      while (Word) {
        if (N == 3)
          break;
        Elems[N >= 2 ? 2 : N] = unsigned(I * 64 + __builtin_ctzll(Word));
        ++N;
        Word &= Word - 1;
      }
    }
    if (N == 0)
      return EmptyInlineId;
    if (N == 1)
      return makeInline(Elems[0], SlotEmpty);
    if (N == 2)
      return makeInline(Elems[0], Elems[1]);
  }
  ++Counters.InternProbes;
  uint64_t Hash = hashWords(Scratch.data());
  SetId Found = findScratch(Hash);
  if (Found != InvalidId)
    return Found;

  assert(!Frozen && "interning into a frozen pool");
  SetId Id = FirstLocalId + uint32_t(Counters.WideSets);
  Arena.append(Scratch.data(), StrideWords);
  Intern.emplace(Hash, Id);
  ++Counters.WideSets;
  size_t Grown = StrideWords * sizeof(uint64_t) +
                 sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *);
  Counters.ArenaBytes += StrideWords * sizeof(uint64_t);
  chargeGrowth(Grown);
  return Id;
}

TerminalSetPool::SetId TerminalSetPool::singleton(unsigned Element) {
  assert(Element < Universe && "element outside universe");
  if (inlineEnabled())
    return makeInline(Element, SlotEmpty);
  std::fill(Scratch.begin(), Scratch.end(), 0);
  Scratch[Element / 64] |= uint64_t(1) << (Element % 64);
  return internScratch();
}

TerminalSetPool::SetId TerminalSetPool::intern(const IndexSet &S) {
  assert(S.universeSize() == Universe && "universe mismatch");
  assert(S.wordCount() == WordsPerSet && "word count mismatch");
  std::copy(S.words(), S.words() + WordsPerSet, Scratch.begin());
  // Defensive: external words cover only WordsPerSet; re-zero the stride
  // padding rather than relying on the invariant alone.
  std::fill(Scratch.begin() + WordsPerSet, Scratch.end(), 0);
  return internScratch();
}

bool TerminalSetPool::contains(SetId A, unsigned Element) const {
  assert(Element < Universe && "element outside universe");
  if (isInline(A))
    return (A & SlotMask) == Element || ((A >> SlotBits) & SlotMask) == Element;
  return (wordsOf(A)[Element / 64] >> (Element % 64)) & 1;
}

unsigned TerminalSetPool::count(SetId A) const {
  if (isInline(A)) {
    unsigned N = 0;
    if ((A & SlotMask) != SlotEmpty)
      ++N;
    if (((A >> SlotBits) & SlotMask) != SlotEmpty)
      ++N;
    return N;
  }
  const uint64_t *W = wordsOf(A);
  unsigned N = 0;
  for (unsigned I = 0; I != WordsPerSet; ++I)
    N += __builtin_popcountll(W[I]);
  return N;
}

bool TerminalSetPool::containsAll(SetId A, SetId B) const {
  ++Counters.SubsetChecks;
  if (A == B || B == EmptyId)
    return true;
  if (A == EmptyId)
    return false;
  if (isInline(B)) {
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty && !contains(A, Lo))
      return false;
    if (Hi != SlotEmpty && !contains(A, Hi))
      return false;
    return true;
  }
  // B is wide: with the inline encoding active a wide set always has at
  // least three elements, so an inline A (at most two) can't cover it.
  if (isInline(A))
    return false;
  const uint64_t *AW = wordsOf(A), *BW = wordsOf(B);
  return setkernel::subset(BW, AW, StrideWords);
}

bool TerminalSetPool::coveredByWords(SetId A, const uint64_t *Mask) const {
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty && !((Mask[Lo / 64] >> (Lo % 64)) & 1))
      return false;
    if (Hi != SlotEmpty && !((Mask[Hi / 64] >> (Hi % 64)) & 1))
      return false;
    return true;
  }
  const uint64_t *W = wordsOf(A);
  return setkernel::subset(W, Mask, StrideWords);
}

void TerminalSetPool::addToWords(SetId A, uint64_t *Mask) const {
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Mask[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Mask[Hi / 64] |= uint64_t(1) << (Hi % 64);
    return;
  }
  const uint64_t *W = wordsOf(A);
  setkernel::orInto(Mask, W, StrideWords);
}

TerminalSetPool::SetId TerminalSetPool::unionSets(SetId A, SetId B) {
  if (A == B || B == EmptyId)
    return A;
  if (A == EmptyId)
    return B;

  if (isInline(A) && isInline(B)) {
    // Merge up to four inline elements without touching the arena.
    unsigned Merged[4] = {0, 0, 0, 0};
    unsigned N = 0;
    auto Add = [&](unsigned E) {
      if (E == SlotEmpty)
        return;
      for (unsigned I = 0; I != N; ++I)
        if (Merged[I] == E)
          return;
      Merged[N++] = E;
    };
    Add(A & SlotMask);
    Add((A >> SlotBits) & SlotMask);
    Add(B & SlotMask);
    Add((B >> SlotBits) & SlotMask);
    if (N <= 2) {
      std::sort(Merged, Merged + N);
      return N == 1 ? makeInline(Merged[0], SlotEmpty)
                    : makeInline(Merged[0], Merged[1]);
    }
  } else if (isInline(B)) {
    // Cheap absorption test: two bit probes against the wide side.
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if ((Lo == SlotEmpty || contains(A, Lo)) &&
        (Hi == SlotEmpty || contains(A, Hi)))
      return A;
  } else if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if ((Lo == SlotEmpty || contains(B, Lo)) &&
        (Hi == SlotEmpty || contains(B, Hi)))
      return B;
  }

  ++Counters.UnionCalls;
  uint64_t Key = (uint64_t(std::min(A, B)) << 32) | std::max(A, B);
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    auto It = P->UnionCache.find(Key);
    if (It != P->UnionCache.end()) {
      ++Counters.UnionCacheHits;
      return It->second;
    }
  }

  loadScratch(A);
  if (isInline(B)) {
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Scratch[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Scratch[Hi / 64] |= uint64_t(1) << (Hi % 64);
  } else {
    const uint64_t *BW = wordsOf(B);
    setkernel::orInto(Scratch.data(), BW, StrideWords);
  }
  SetId R = internScratch();
  assert(!Frozen && "caching into a frozen pool");
  UnionCache.emplace(Key, R);
  chargeGrowth(sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *));
  return R;
}

TerminalSetPool::SetId TerminalSetPool::withElement(SetId A,
                                                    unsigned Element) {
  assert(Element < Universe && "element outside universe");
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo == Element || Hi == Element)
      return A;
    if (Lo == SlotEmpty)
      return makeInline(Element, SlotEmpty);
    if (Hi == SlotEmpty)
      return Lo < Element ? makeInline(Lo, Element) : makeInline(Element, Lo);
    // Two occupied slots plus a third element: promote to a wide set.
  } else if (contains(A, Element)) {
    return A;
  }

  ++Counters.WithElementCalls;
  uint64_t Key = (uint64_t(A) << 32) | Element;
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    auto It = P->WithElementCache.find(Key);
    if (It != P->WithElementCache.end()) {
      ++Counters.WithElementCacheHits;
      return It->second;
    }
  }

  loadScratch(A);
  Scratch[Element / 64] |= uint64_t(1) << (Element % 64);
  SetId R = internScratch();
  assert(!Frozen && "caching into a frozen pool");
  WithElementCache.emplace(Key, R);
  chargeGrowth(sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *));
  return R;
}

IndexSet TerminalSetPool::materialize(SetId A) const {
  return materialize(A, Universe);
}

IndexSet TerminalSetPool::materialize(SetId A,
                                      unsigned UniverseOverride) const {
  assert(UniverseOverride >= Universe && "cannot shrink the universe");
  IndexSet S(UniverseOverride);
  forEach(A, [&](unsigned E) { S.insert(E); });
  return S;
}

} // namespace lalrcex
