//===- support/TerminalSetPool.cpp - Hash-consed terminal sets ------------===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/TerminalSetPool.h"

#include "support/Budget.h"

#include <algorithm>

namespace lalrcex {

namespace {
/// Sentinel for "no such interned set". Inline ids never set bit 30 and
/// wide ids never set bit 31, so all-ones is unused by both encodings.
constexpr TerminalSetPool::SetId InvalidId = 0xFFFFFFFFu;
} // namespace

TerminalSetPool::TerminalSetPool(unsigned UniverseSize)
    : Universe(UniverseSize), WordsPerSet((UniverseSize + 63) / 64) {
  Scratch.resize(WordsPerSet);
  if (inlineEnabled()) {
    EmptyId = EmptyInlineId;
  } else {
    // No inline encoding: the empty set is the pool's first wide set.
    std::fill(Scratch.begin(), Scratch.end(), 0);
    EmptyId = internScratch();
  }
}

TerminalSetPool::TerminalSetPool(const TerminalSetPool *BasePool,
                                 ResourceGuard *G)
    : Universe(BasePool->Universe), WordsPerSet(BasePool->WordsPerSet),
      Base(BasePool),
      FirstLocalId(BasePool->FirstLocalId +
                   uint32_t(BasePool->Counters.WideSets)),
      Guard(G), EmptyId(BasePool->EmptyId) {
  Scratch.resize(WordsPerSet);
}

TerminalSetPool TerminalSetPool::overlay(const TerminalSetPool &Base,
                                         ResourceGuard *Guard) {
  assert(Base.frozen() && "overlay base must be frozen first");
  return TerminalSetPool(&Base, Guard);
}

const uint64_t *TerminalSetPool::wordsOf(SetId A) const {
  assert(!isInline(A) && "inline sets have no arena words");
  const TerminalSetPool *P = this;
  while (A < P->FirstLocalId) {
    P = P->Base;
    assert(P && "wide id below the root pool");
  }
  return &P->Arena[size_t(A - P->FirstLocalId) * WordsPerSet];
}

void TerminalSetPool::loadScratch(SetId A) const {
  if (isInline(A)) {
    std::fill(Scratch.begin(), Scratch.end(), 0);
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Scratch[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Scratch[Hi / 64] |= uint64_t(1) << (Hi % 64);
    return;
  }
  const uint64_t *W = wordsOf(A);
  std::copy(W, W + WordsPerSet, Scratch.begin());
}

uint64_t TerminalSetPool::hashWords(const uint64_t *W) const {
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (unsigned I = 0; I != WordsPerSet; ++I)
    H = (H ^ W[I]) * 0x100000001b3ULL;
  return H;
}

bool TerminalSetPool::equalsScratch(SetId A) const {
  const uint64_t *W = wordsOf(A);
  return std::equal(W, W + WordsPerSet, Scratch.begin());
}

TerminalSetPool::SetId TerminalSetPool::findScratchLocal(uint64_t Hash) const {
  auto [It, End] = Intern.equal_range(Hash);
  for (; It != End; ++It)
    if (equalsScratch(It->second))
      return It->second;
  return InvalidId;
}

TerminalSetPool::SetId TerminalSetPool::findScratch(uint64_t Hash) const {
  // Probe the frozen base chain first so an overlay never re-interns a set
  // the base already owns (canonical ids are global across the chain).
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    SetId Found = P->findScratchLocal(Hash);
    if (Found != InvalidId)
      return Found;
  }
  return InvalidId;
}

void TerminalSetPool::chargeGrowth(size_t Bytes) {
  // A tripped memory budget is observed by the search's own guard polls;
  // the pool itself keeps functioning so degradation stays graceful.
  if (Guard)
    Guard->chargeBytes(Bytes);
}

TerminalSetPool::SetId TerminalSetPool::internScratch() {
  if (inlineEnabled()) {
    // Demote to the inline encoding when at most two bits are set.
    unsigned Elems[3];
    unsigned N = 0;
    for (unsigned I = 0; I != WordsPerSet && N <= 2; ++I) {
      uint64_t Word = Scratch[I];
      while (Word) {
        if (N == 3)
          break;
        Elems[N >= 2 ? 2 : N] = unsigned(I * 64 + __builtin_ctzll(Word));
        ++N;
        Word &= Word - 1;
      }
    }
    if (N == 0)
      return EmptyInlineId;
    if (N == 1)
      return makeInline(Elems[0], SlotEmpty);
    if (N == 2)
      return makeInline(Elems[0], Elems[1]);
  }
  ++Counters.InternProbes;
  uint64_t Hash = hashWords(Scratch.data());
  SetId Found = findScratch(Hash);
  if (Found != InvalidId)
    return Found;

  assert(!Frozen && "interning into a frozen pool");
  SetId Id = FirstLocalId + uint32_t(Counters.WideSets);
  Arena.insert(Arena.end(), Scratch.begin(), Scratch.end());
  Intern.emplace(Hash, Id);
  ++Counters.WideSets;
  size_t Grown = WordsPerSet * sizeof(uint64_t) +
                 sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *);
  Counters.ArenaBytes += WordsPerSet * sizeof(uint64_t);
  chargeGrowth(Grown);
  return Id;
}

TerminalSetPool::SetId TerminalSetPool::singleton(unsigned Element) {
  assert(Element < Universe && "element outside universe");
  if (inlineEnabled())
    return makeInline(Element, SlotEmpty);
  std::fill(Scratch.begin(), Scratch.end(), 0);
  Scratch[Element / 64] |= uint64_t(1) << (Element % 64);
  return internScratch();
}

TerminalSetPool::SetId TerminalSetPool::intern(const IndexSet &S) {
  assert(S.universeSize() == Universe && "universe mismatch");
  assert(S.wordCount() == WordsPerSet && "word count mismatch");
  std::copy(S.words(), S.words() + WordsPerSet, Scratch.begin());
  return internScratch();
}

bool TerminalSetPool::contains(SetId A, unsigned Element) const {
  assert(Element < Universe && "element outside universe");
  if (isInline(A))
    return (A & SlotMask) == Element || ((A >> SlotBits) & SlotMask) == Element;
  return (wordsOf(A)[Element / 64] >> (Element % 64)) & 1;
}

unsigned TerminalSetPool::count(SetId A) const {
  if (isInline(A)) {
    unsigned N = 0;
    if ((A & SlotMask) != SlotEmpty)
      ++N;
    if (((A >> SlotBits) & SlotMask) != SlotEmpty)
      ++N;
    return N;
  }
  const uint64_t *W = wordsOf(A);
  unsigned N = 0;
  for (unsigned I = 0; I != WordsPerSet; ++I)
    N += __builtin_popcountll(W[I]);
  return N;
}

bool TerminalSetPool::containsAll(SetId A, SetId B) const {
  ++Counters.SubsetChecks;
  if (A == B || B == EmptyId)
    return true;
  if (A == EmptyId)
    return false;
  if (isInline(B)) {
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty && !contains(A, Lo))
      return false;
    if (Hi != SlotEmpty && !contains(A, Hi))
      return false;
    return true;
  }
  // B is wide: with the inline encoding active a wide set always has at
  // least three elements, so an inline A (at most two) can't cover it.
  if (isInline(A))
    return false;
  const uint64_t *AW = wordsOf(A), *BW = wordsOf(B);
  for (unsigned I = 0; I != WordsPerSet; ++I)
    if (BW[I] & ~AW[I])
      return false;
  return true;
}

bool TerminalSetPool::coveredByWords(SetId A, const uint64_t *Mask) const {
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty && !((Mask[Lo / 64] >> (Lo % 64)) & 1))
      return false;
    if (Hi != SlotEmpty && !((Mask[Hi / 64] >> (Hi % 64)) & 1))
      return false;
    return true;
  }
  const uint64_t *W = wordsOf(A);
  for (unsigned I = 0; I != WordsPerSet; ++I)
    if (W[I] & ~Mask[I])
      return false;
  return true;
}

void TerminalSetPool::addToWords(SetId A, uint64_t *Mask) const {
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Mask[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Mask[Hi / 64] |= uint64_t(1) << (Hi % 64);
    return;
  }
  const uint64_t *W = wordsOf(A);
  for (unsigned I = 0; I != WordsPerSet; ++I)
    Mask[I] |= W[I];
}

TerminalSetPool::SetId TerminalSetPool::unionSets(SetId A, SetId B) {
  if (A == B || B == EmptyId)
    return A;
  if (A == EmptyId)
    return B;

  if (isInline(A) && isInline(B)) {
    // Merge up to four inline elements without touching the arena.
    unsigned Merged[4] = {0, 0, 0, 0};
    unsigned N = 0;
    auto Add = [&](unsigned E) {
      if (E == SlotEmpty)
        return;
      for (unsigned I = 0; I != N; ++I)
        if (Merged[I] == E)
          return;
      Merged[N++] = E;
    };
    Add(A & SlotMask);
    Add((A >> SlotBits) & SlotMask);
    Add(B & SlotMask);
    Add((B >> SlotBits) & SlotMask);
    if (N <= 2) {
      std::sort(Merged, Merged + N);
      return N == 1 ? makeInline(Merged[0], SlotEmpty)
                    : makeInline(Merged[0], Merged[1]);
    }
  } else if (isInline(B)) {
    // Cheap absorption test: two bit probes against the wide side.
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if ((Lo == SlotEmpty || contains(A, Lo)) &&
        (Hi == SlotEmpty || contains(A, Hi)))
      return A;
  } else if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if ((Lo == SlotEmpty || contains(B, Lo)) &&
        (Hi == SlotEmpty || contains(B, Hi)))
      return B;
  }

  ++Counters.UnionCalls;
  uint64_t Key = (uint64_t(std::min(A, B)) << 32) | std::max(A, B);
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    auto It = P->UnionCache.find(Key);
    if (It != P->UnionCache.end()) {
      ++Counters.UnionCacheHits;
      return It->second;
    }
  }

  loadScratch(A);
  if (isInline(B)) {
    unsigned Lo = B & SlotMask, Hi = (B >> SlotBits) & SlotMask;
    if (Lo != SlotEmpty)
      Scratch[Lo / 64] |= uint64_t(1) << (Lo % 64);
    if (Hi != SlotEmpty)
      Scratch[Hi / 64] |= uint64_t(1) << (Hi % 64);
  } else {
    const uint64_t *BW = wordsOf(B);
    for (unsigned I = 0; I != WordsPerSet; ++I)
      Scratch[I] |= BW[I];
  }
  SetId R = internScratch();
  assert(!Frozen && "caching into a frozen pool");
  UnionCache.emplace(Key, R);
  chargeGrowth(sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *));
  return R;
}

TerminalSetPool::SetId TerminalSetPool::withElement(SetId A,
                                                    unsigned Element) {
  assert(Element < Universe && "element outside universe");
  if (isInline(A)) {
    unsigned Lo = A & SlotMask, Hi = (A >> SlotBits) & SlotMask;
    if (Lo == Element || Hi == Element)
      return A;
    if (Lo == SlotEmpty)
      return makeInline(Element, SlotEmpty);
    if (Hi == SlotEmpty)
      return Lo < Element ? makeInline(Lo, Element) : makeInline(Element, Lo);
    // Two occupied slots plus a third element: promote to a wide set.
  } else if (contains(A, Element)) {
    return A;
  }

  ++Counters.WithElementCalls;
  uint64_t Key = (uint64_t(A) << 32) | Element;
  for (const TerminalSetPool *P = this; P; P = P->Base) {
    auto It = P->WithElementCache.find(Key);
    if (It != P->WithElementCache.end()) {
      ++Counters.WithElementCacheHits;
      return It->second;
    }
  }

  loadScratch(A);
  Scratch[Element / 64] |= uint64_t(1) << (Element % 64);
  SetId R = internScratch();
  assert(!Frozen && "caching into a frozen pool");
  WithElementCache.emplace(Key, R);
  chargeGrowth(sizeof(std::pair<uint64_t, SetId>) + 2 * sizeof(void *));
  return R;
}

IndexSet TerminalSetPool::materialize(SetId A) const {
  return materialize(A, Universe);
}

IndexSet TerminalSetPool::materialize(SetId A,
                                      unsigned UniverseOverride) const {
  assert(UniverseOverride >= Universe && "cannot shrink the universe");
  IndexSet S(UniverseOverride);
  forEach(A, [&](unsigned E) { S.insert(E); });
  return S;
}

} // namespace lalrcex
