//===- support/Budget.h - Resource governance ------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance layer behind the paper's "always answers"
/// contract: counterexample construction must degrade (unifying ->
/// nonunifying -> bare item-pair report) when it runs out of budget, never
/// hang, abort, or eat the machine.
///
/// A ResourceGuard combines four independent brakes:
///
///   - a \e deterministic step budget (configurations explored / vertices
///     expanded), the primary limit because it is reproducible;
///   - a byte-accounted \e memory budget covering the search's dominant
///     allocations (configuration pool, visited set, interning arenas);
///   - a monotonic \e wall-clock deadline, polled only every
///     WallPollPeriod steps so the hot loop stays syscall-free (this
///     replaces the magic `(Explored & 0x3F) == 0` polls that used to be
///     open-coded in the searches);
///   - a cooperative \e CancellationToken that another thread (a CLI
///     signal handler, a server request context) can trip at any time.
///
/// Once any brake trips, the guard is \e stuck: every later step() returns
/// the same sticky GuardStop, so callers may poll coarsely without losing
/// the original reason. SearchError is the recoverable-error type the
/// searches throw instead of assert()ing on malformed internal state; it
/// is caught at the search boundary and turned into a degraded report.
///
/// A guard may be charged concurrently from several worker threads (the
/// parallel examineAll shares one cumulative guard): counters are atomic,
/// and the sticky stop is published with a single compare-and-swap so the
/// first brake to trip wins on every thread.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_BUDGET_H
#define LALRCEX_SUPPORT_BUDGET_H

#include "support/Stopwatch.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

namespace lalrcex {

class MetricsRegistry;

/// A recoverable internal error in a search or builder: malformed search
/// state, inconsistent derivation ledgers, invalid caller input. Replaces
/// the hard asserts that used to abort the process; callers catch it at
/// the search boundary and fall down the degradation ladder.
class SearchError : public std::runtime_error {
public:
  explicit SearchError(const std::string &What)
      : std::runtime_error(What) {}
};

/// Why a guard stopped the work (GuardStop::None while within budget).
enum class GuardStop : uint8_t {
  None,
  StepLimit,   ///< the deterministic step budget ran out
  MemoryLimit, ///< the accounted byte budget ran out
  Deadline,    ///< the wall-clock deadline passed
  Cancelled,   ///< the cancellation token was tripped
};

/// Short name for diagnostics ("step-limit", "cancelled", ...).
const char *toString(GuardStop S);

/// A thread-safe flag for cooperative cancellation. Copies share the same
/// underlying flag, so a token handed to a search can be tripped from any
/// thread holding another copy.
class CancellationToken {
public:
  CancellationToken()
      : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests that all work holding a copy of this token stop soon.
  void cancel() { Flag->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return Flag->load(std::memory_order_relaxed); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// Limits enforced by a ResourceGuard; defaults are all unlimited.
struct ResourceLimits {
  static constexpr size_t Unlimited = ~size_t(0);

  /// Deterministic work-unit budget (configurations / vertices).
  size_t MaxSteps = Unlimited;
  /// Accounted heap-byte budget.
  size_t MaxBytes = Unlimited;
  /// Wall-clock budget. Unset: no deadline. Non-positive values create an
  /// already-expired deadline (used by tests for deterministic timeouts).
  std::optional<double> WallClockSeconds;
  /// Steps between wall-clock / cancellation polls (>= 1). Step counting
  /// and memory accounting are exact regardless.
  unsigned WallPollPeriod = 64;
};

/// Tracks consumption against a ResourceLimits and reports the first
/// budget that trips.
///
/// Thread-safe: any number of threads may charge steps and bytes against
/// one guard. Counters use relaxed atomics (only their totals matter, not
/// their ordering against other memory); the sticky Stop is set with an
/// acq_rel compare-and-swap from None so exactly one trip reason is ever
/// published, and readers acquire it so whatever state the tripping thread
/// wrote beforehand is visible. reset() is not thread-safe: it must happen
/// before workers start or after they join.
class ResourceGuard {
public:
  /// An unlimited guard with a private (untripped) token.
  ResourceGuard() : ResourceGuard(ResourceLimits()) {}

  explicit ResourceGuard(const ResourceLimits &L,
                         CancellationToken Token = CancellationToken());

  // The atomics make a guard address-stable; share it by reference.
  ResourceGuard(const ResourceGuard &) = delete;
  ResourceGuard &operator=(const ResourceGuard &) = delete;

  /// Re-arms this guard with fresh limits and a fresh deadline, clearing
  /// all consumption and any sticky stop. Must not race with concurrent
  /// charges (call between runs, not during one).
  void reset(const ResourceLimits &L,
             CancellationToken Token = CancellationToken());

  /// Charges one unit of deterministic work. \returns GuardStop::None
  /// while within budget, otherwise the sticky stop reason.
  GuardStop step() { return chargeSteps(1); }

  /// Charges \p N units at once (e.g. a sub-search's step count).
  GuardStop chargeSteps(size_t N);

  /// Charges \p Bytes of accounted memory. \returns the sticky stop
  /// reason (MemoryLimit once the budget is exceeded).
  GuardStop chargeBytes(size_t Bytes);

  /// Returns accounted memory (never un-trips a stopped guard).
  void releaseBytes(size_t Bytes);

  /// The sticky stop reason, polling the deadline and token first so
  /// callers that do no step-charged work still observe expiry.
  GuardStop stop();

  /// The sticky stop reason without polling (what has tripped so far).
  GuardStop stopped() const { return Stop.load(std::memory_order_acquire); }

  size_t steps() const { return Steps.load(std::memory_order_relaxed); }
  size_t bytesInUse() const { return Bytes.load(std::memory_order_relaxed); }
  size_t peakBytes() const {
    return PeakBytes.load(std::memory_order_relaxed);
  }

  /// Seconds until the deadline; effectively infinite when none is set.
  double remainingSeconds() const { return Expiry.remainingSeconds(); }

  const ResourceLimits &limits() const { return Limits; }
  const CancellationToken &token() const { return Token; }

  /// Attaches a metrics registry (may be null to detach): each published
  /// trip bumps the matching guard.trips.* counter exactly once, on the
  /// thread whose compare-and-swap won. Survives reset(); safe to call
  /// while charges are in flight.
  void attachMetrics(MetricsRegistry *M) {
    Metrics.store(M, std::memory_order_release);
  }

private:
  GuardStop trip(GuardStop S);
  GuardStop poll(size_t StepsNow);

  ResourceLimits Limits;
  CancellationToken Token;
  Deadline Expiry;
  std::atomic<size_t> Steps{0};
  std::atomic<size_t> Bytes{0};
  std::atomic<size_t> PeakBytes{0};
  std::atomic<size_t> NextPoll{0};
  std::atomic<GuardStop> Stop{GuardStop::None};
  std::atomic<MetricsRegistry *> Metrics{nullptr};
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_BUDGET_H
