//===- support/IndexSet.cpp -----------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/IndexSet.h"

using namespace lalrcex;

std::vector<unsigned> IndexSet::elements() const {
  std::vector<unsigned> Out;
  Out.reserve(count());
  forEach([&Out](unsigned E) { Out.push_back(E); });
  return Out;
}
