//===- support/FaultInjection.cpp ------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#if defined(LALRCEX_FAULT_INJECTION)

namespace lalrcex {
namespace faults {

namespace {
Kind ArmedKind = Kind::None;
std::size_t ArmedStep = 0;
} // namespace

void arm(Kind K, std::size_t AtStep) {
  ArmedKind = K;
  ArmedStep = AtStep;
}

void disarm() { ArmedKind = Kind::None; }

bool fires(Kind K, std::size_t Step) {
  if (ArmedKind != K || Step < ArmedStep)
    return false;
  disarm();
  return true;
}

} // namespace faults
} // namespace lalrcex

#endif // LALRCEX_FAULT_INJECTION
