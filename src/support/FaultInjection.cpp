//===- support/FaultInjection.cpp ------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#if defined(LALRCEX_FAULT_INJECTION)

#include <atomic>

namespace lalrcex {
namespace faults {

namespace {
// Hooks are consulted from every examineAll worker, so the armed fault is
// atomic and firing is a single exchange: even when several workers reach
// their trigger step simultaneously, exactly one observes the fault.
std::atomic<Kind> ArmedKind{Kind::None};
std::atomic<std::size_t> ArmedStep{0};
} // namespace

void arm(Kind K, std::size_t AtStep) {
  ArmedStep.store(AtStep, std::memory_order_relaxed);
  ArmedKind.store(K, std::memory_order_release);
}

void disarm() { ArmedKind.store(Kind::None, std::memory_order_release); }

bool fires(Kind K, std::size_t Step) {
  if (ArmedKind.load(std::memory_order_acquire) != K ||
      Step < ArmedStep.load(std::memory_order_relaxed))
    return false;
  // One-shot across threads: only the thread that swings K -> None fires.
  Kind Expected = K;
  return ArmedKind.compare_exchange_strong(Expected, Kind::None,
                                           std::memory_order_acq_rel);
}

} // namespace faults
} // namespace lalrcex

#endif // LALRCEX_FAULT_INJECTION
