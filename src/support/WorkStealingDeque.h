//===- support/WorkStealingDeque.h - Range-splitting work stealing -*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing deque over a fixed task array, specialized for the
/// bucket-epoch parallel phase of the unifying search.
///
/// Each epoch distributes the N tasks of one Dial cost bucket (slot
/// indices 0..N-1, in canonical drain order) across W workers as
/// contiguous index ranges. A worker's deque is one atomic 64-bit word
/// packing its half-open range [Head, Tail):
///
///   - the owner pops from the \e front of its own range (preserving the
///     canonical slot order locally, which keeps the serial commit phase
///     cache-friendly: slots are mostly speculated in the order they are
///     committed);
///   - a thief steals the \e back half of a victim's range — half rounded
///     up, so even a single remaining unclaimed task can be stolen from a
///     stalled victim — with one compare-and-swap, then installs the
///     stolen range as its own and continues popping from its front.
///
/// Ranges only ever shrink (pop moves Head forward, steal moves Tail
/// backward) and are re-armed only between epochs, so the CAS is ABA-free
/// without tags or epochs in the word itself. Tasks are never pushed
/// during a phase — the bucket snapshot is complete before the phase
/// starts — which is what makes this radically simpler than a Chase-Lev
/// deque while providing the same load-balancing behavior for this
/// workload shape.
///
/// Thread-safety contract: resetEpoch()/assignRange() happen-before the
/// phase (the caller publishes them via its epoch barrier);
/// pop()/stealInto() may be called concurrently by any worker during the
/// phase; counters() is read after the phase barrier.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_WORKSTEALINGDEQUE_H
#define LALRCEX_SUPPORT_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace lalrcex {

/// Work-stealing distribution of a fixed index range across workers.
class WorkStealingDeque {
public:
  /// Per-worker steal telemetry, accumulated across epochs and flushed
  /// into the search.* metrics by the search that owns the pool.
  struct Counters {
    uint64_t TasksStolen = 0;   ///< tasks acquired from a victim's range
    uint64_t StealFailures = 0; ///< lost CAS races and empty-victim probes
  };

  explicit WorkStealingDeque(unsigned Workers)
      : NumWorkers(Workers), Slots(new Slot[Workers]) {
    assert(Workers >= 1 && "need at least one worker");
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  unsigned workers() const { return NumWorkers; }

  /// Arms worker \p W with the contiguous range [\p Begin, \p End).
  /// Must not race with an active phase.
  void assignRange(unsigned W, uint32_t Begin, uint32_t End) {
    assert(W < NumWorkers && Begin <= End);
    Slots[W].Range.store(pack(Begin, End), std::memory_order_relaxed);
  }

  /// Splits [0, \p NumTasks) evenly across all workers (worker 0 gets the
  /// first chunk, preserving canonical order front-to-back).
  void distribute(uint32_t NumTasks) {
    uint32_t Base = NumTasks / NumWorkers, Rem = NumTasks % NumWorkers;
    uint32_t Begin = 0;
    for (unsigned W = 0; W != NumWorkers; ++W) {
      uint32_t Len = Base + (W < Rem ? 1 : 0);
      assignRange(W, Begin, Begin + Len);
      Begin += Len;
    }
  }

  /// Owner pop: claims the front task of \p W's own range.
  bool pop(unsigned W, uint32_t &Out) {
    std::atomic<uint64_t> &A = Slots[W].Range;
    uint64_t Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      uint32_t Head = unpackHead(Cur), Tail = unpackTail(Cur);
      if (Head >= Tail)
        return false;
      if (A.compare_exchange_weak(Cur, pack(Head + 1, Tail),
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        Out = Head;
        return true;
      }
    }
  }

  /// Thief path: scans the other workers for remaining work and steals
  /// the back half (rounded up) of the fullest victim's range, installing
  /// it as \p W's own range and popping the first stolen task into
  /// \p Out. \returns false when every victim looked empty this scan.
  bool stealInto(unsigned W, uint32_t &Out, Counters &C) {
    for (;;) {
      unsigned Victim = NumWorkers;
      uint32_t Best = 0;
      for (unsigned V = 0; V != NumWorkers; ++V) {
        if (V == W)
          continue;
        uint64_t Cur = Slots[V].Range.load(std::memory_order_relaxed);
        uint32_t Size = unpackTail(Cur) - unpackHead(Cur);
        if (unpackTail(Cur) > unpackHead(Cur) && Size > Best) {
          Best = Size;
          Victim = V;
        }
      }
      if (Victim == NumWorkers)
        return false; // nothing left anywhere
      std::atomic<uint64_t> &A = Slots[Victim].Range;
      uint64_t Cur = A.load(std::memory_order_relaxed);
      uint32_t Head = unpackHead(Cur), Tail = unpackTail(Cur);
      if (Head >= Tail) {
        ++C.StealFailures; // drained between the scan and the attempt
        continue;
      }
      uint32_t Mid = Head + (Tail - Head) / 2; // thief takes ceil(half)
      if (!A.compare_exchange_strong(Cur, pack(Head, Mid),
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        ++C.StealFailures; // lost the race; rescan
        continue;
      }
      C.TasksStolen += Tail - Mid;
      // Install [Mid + 1, Tail) as our own range and hand out Mid now.
      Slots[W].Range.store(pack(Mid + 1, Tail), std::memory_order_release);
      Out = Mid;
      return true;
    }
  }

  /// Claims the next task for worker \p W: own range first, then theft.
  bool next(unsigned W, uint32_t &Out, Counters &C) {
    if (pop(W, Out))
      return true;
    return stealInto(W, Out, C);
  }

  /// Unclaimed tasks across all workers (quiescent use only).
  uint32_t remaining() const {
    uint32_t Total = 0;
    for (unsigned W = 0; W != NumWorkers; ++W) {
      uint64_t Cur = Slots[W].Range.load(std::memory_order_relaxed);
      Total += unpackTail(Cur) - unpackHead(Cur);
    }
    return Total;
  }

private:
  static uint64_t pack(uint32_t Head, uint32_t Tail) {
    return (uint64_t(Head) << 32) | Tail;
  }
  static uint32_t unpackHead(uint64_t V) { return uint32_t(V >> 32); }
  static uint32_t unpackTail(uint64_t V) { return uint32_t(V); }

  /// One cache line per worker so pops don't false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> Range{0};
  };

  unsigned NumWorkers;
  std::unique_ptr<Slot[]> Slots;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_WORKSTEALINGDEQUE_H
