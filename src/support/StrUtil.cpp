//===- support/StrUtil.cpp ------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cstdio>

using namespace lalrcex;

std::string lalrcex::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string lalrcex::formatSeconds(double Seconds) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Seconds);
  return Buf;
}

std::string lalrcex::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string lalrcex::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::optional<uint64_t> lalrcex::parseUnsigned(const std::string &S,
                                               uint64_t Max) {
  if (S.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    unsigned Digit = unsigned(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return std::nullopt;
    Value = Value * 10 + Digit;
  }
  if (Value > Max)
    return std::nullopt;
  return Value;
}
