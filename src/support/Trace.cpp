//===- support/Trace.cpp --------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>

using namespace lalrcex;

namespace {

/// Innermost live span on this thread, keyed by recorder so spans from
/// unrelated recorders never adopt each other.
struct ThreadSpanState {
  TraceRecorder *Rec = nullptr;
  uint64_t Current = 0;
};
thread_local ThreadSpanState CurrentSpan;

void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if ((unsigned char)C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TraceRecorder::TraceRecorder(size_t Capacity)
    : Epoch(std::chrono::steady_clock::now()),
      Capacity(Capacity ? Capacity : 1) {
  Ring.reserve(this->Capacity);
}

uint32_t TraceRecorder::threadId() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid =
      NextTid.fetch_add(1, std::memory_order_relaxed) + 1;
  return Tid;
}

void TraceRecorder::record(const Event &E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.size() < Capacity) {
    Ring.push_back(E);
    return;
  }
  // Full: overwrite the oldest slot.
  Ring[Next] = E;
  Next = (Next + 1) % Capacity;
  Wrapped = true;
  ++Dropped;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Wrapped)
    return Ring;
  std::vector<Event> Out;
  Out.reserve(Ring.size());
  for (size_t I = 0; I != Ring.size(); ++I)
    Out.push_back(Ring[(Next + I) % Ring.size()]);
  return Out;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::string TraceRecorder::toChromeJson() const {
  std::vector<Event> Evs = events();
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const Event &E : Evs) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    appendEscaped(Out, E.Name);
    Out += "\",\"cat\":\"lalrcex\",\"ph\":\"X\",\"pid\":1";
    std::snprintf(Buf, sizeof(Buf), ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  E.Tid, double(E.StartNs) / 1000.0, double(E.DurNs) / 1000.0);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ",\"args\":{\"id\":%llu,\"parent\":%llu",
                  (unsigned long long)E.Id, (unsigned long long)E.Parent);
    Out += Buf;
    if (E.ConflictId >= 0) {
      std::snprintf(Buf, sizeof(Buf), ",\"conflict\":%lld",
                    (long long)E.ConflictId);
      Out += Buf;
    }
    Out += "}}";
  }
  Out += "]}";
  return Out;
}

bool TraceRecorder::writeChromeJson(const std::string &Path) const {
  std::string Json = toChromeJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

//===----------------------------------------------------------------------===//
// TraceSpan
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(TraceRecorder *Rec, const char *Name, int64_t ConflictId)
    : Rec(Rec), Name(Name), ConflictId(ConflictId) {
  if (!Rec)
    return;
  StartNs = Rec->nowNs();
  Id = Rec->nextSpanId();
  SavedRec = CurrentSpan.Rec;
  SavedParent = CurrentSpan.Current;
  Parent = (CurrentSpan.Rec == Rec) ? CurrentSpan.Current : 0;
  CurrentSpan.Rec = Rec;
  CurrentSpan.Current = Id;
}

TraceSpan::~TraceSpan() {
  if (!Rec)
    return;
  TraceRecorder::Event E;
  E.Name = Name;
  E.StartNs = StartNs;
  uint64_t End = Rec->nowNs();
  E.DurNs = End > StartNs ? End - StartNs : 0;
  E.Tid = TraceRecorder::threadId();
  E.Id = Id;
  E.Parent = Parent;
  E.ConflictId = ConflictId;
  Rec->record(E);
  CurrentSpan.Rec = SavedRec;
  CurrentSpan.Current = SavedParent;
}
