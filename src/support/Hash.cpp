//===- support/Hash.cpp ----------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#include <cstring>

using namespace lalrcex;

namespace {

constexpr uint64_t M1 = 0x9E3779B97F4A7C15ULL; // golden-ratio odd constant
constexpr uint64_t M2 = 0xC2B2AE3D27D4EB4FULL; // xxHash prime
constexpr uint64_t M3 = 0x165667B19E3779F9ULL; // xxHash prime

uint64_t rotl(uint64_t V, int S) { return (V << S) | (V >> (64 - S)); }

/// SplitMix64 finalizer: full avalanche over one 64-bit lane.
uint64_t avalanche(uint64_t V) {
  V ^= V >> 30;
  V *= 0xBF58476D1CE4E5B9ULL;
  V ^= V >> 27;
  V *= 0x94D049BB133111EBULL;
  V ^= V >> 31;
  return V;
}

} // namespace

std::string Fingerprint128::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(32);
  for (uint64_t Lane : {Hi, Lo})
    for (int Shift = 60; Shift >= 0; Shift -= 4)
      Out += Digits[(Lane >> Shift) & 0xF];
  return Out;
}

StableHasher::StableHasher() : A(M1 ^ 0x6C616C72ULL), B(M2 ^ 0x63657863ULL) {}

void StableHasher::mixWord(uint64_t W) {
  A = rotl(A ^ (W * M2), 31) * M1;
  B = rotl(B + W, 29) * M3 + 0x27D4EB2F165667C5ULL;
}

void StableHasher::addBytes(const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Length += Size;
  while (Size != 0) {
    unsigned Take = unsigned(Size < 8 - PendingLen ? Size : 8 - PendingLen);
    std::memcpy(Pending + PendingLen, P, Take);
    PendingLen += Take;
    P += Take;
    Size -= Take;
    if (PendingLen == 8) {
      // Assemble explicitly little-endian so the stream is byte-order
      // independent of the host.
      uint64_t W = 0;
      for (unsigned I = 0; I != 8; ++I)
        W |= uint64_t(Pending[I]) << (8 * I);
      mixWord(W);
      PendingLen = 0;
    }
  }
}

void StableHasher::addU32(uint32_t V) {
  uint8_t Buf[4];
  for (unsigned I = 0; I != 4; ++I)
    Buf[I] = uint8_t(V >> (8 * I));
  addBytes(Buf, 4);
}

void StableHasher::addU64(uint64_t V) {
  uint8_t Buf[8];
  for (unsigned I = 0; I != 8; ++I)
    Buf[I] = uint8_t(V >> (8 * I));
  addBytes(Buf, 8);
}

void StableHasher::addF64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  addU64(Bits);
}

void StableHasher::addString(const std::string &S) {
  addU64(S.size());
  addBytes(S.data(), S.size());
}

Fingerprint128 StableHasher::finish() const {
  // Fold the partial word and total length without disturbing the
  // streaming state, so finish() is repeatable.
  uint64_t FA = A, FB = B;
  uint64_t Tail = uint64_t(PendingLen) << 56;
  for (unsigned I = 0; I != PendingLen; ++I)
    Tail |= uint64_t(Pending[I]) << (8 * I);
  FA = rotl(FA ^ (Tail * M2), 31) * M1;
  FB = rotl(FB + Tail, 29) * M3;
  FA ^= Length * M2;
  FB += Length * M1;

  Fingerprint128 F;
  F.Lo = avalanche(FA + FB * M3);
  F.Hi = avalanche(FB ^ rotl(FA, 23) ^ Length);
  return F;
}

Fingerprint128 lalrcex::fingerprintBytes(const void *Data, size_t Size) {
  StableHasher H;
  H.addBytes(Data, Size);
  return H.finish();
}
