//===- support/Metrics.h - Sharded pipeline metrics registry ---*- C++ -*-===//
//
// Part of lalrcex.
//
// A process-wide observability registry for the counterexample pipeline:
// monotonic counters, max-merged gauges, and log2-bucketed histograms for
// wall times and search effort. The hot path is lock-free: every thread
// writes to its own cache-line-aligned shard with relaxed atomics, and a
// snapshot merges the shards. All instrumentation sites take a
// `MetricsRegistry *` that may be null; when it is null the site compiles
// down to a pointer test, so a run with metrics disabled pays nothing
// beyond that branch.
//
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_METRICS_H
#define LALRCEX_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lalrcex {

namespace metric {

/// Monotonic event counters, one per instrumented site. The order here
/// must match CounterNames in Metrics.cpp.
enum Counter : unsigned {
  AnalysisRuns,
  AnalysisNullablePasses,
  AnalysisFirstPasses,
  AnalysisFollowPasses,
  AnalysisMinYieldPasses,
  AutomatonBuilds,
  AutomatonStates,
  AutomatonClosureItems,
  AutomatonKernelLaPasses,
  AutomatonClosureLaPasses,
  AutomatonStatesReused,
  AutomatonStatesRebuilt,
  AutomatonStatesAdded,
  GraphBuilds,
  GraphNodes,
  GraphEdges,
  LssSearches,
  LssExpanded,
  LssEnqueued,
  LssDominancePruned,
  LssSubsetChecks,
  LssUnionCalls,
  LssUnionCacheHits,
  UnifyingSearches,
  UnifyingConfigurations,
  UnifyingQueuePushes,
  UnifyingQueuePops,
  UnifyingFound,
  UnifyingExhausted,
  UnifyingBudgetStops,
  SearchTasksStolen,
  SearchStealFailures,
  SearchBucketBarriers,
  NonunifyingBuilds,
  NonunifyingFailures,
  GuardTripsStepLimit,
  GuardTripsMemoryLimit,
  GuardTripsDeadline,
  GuardTripsCancelled,
  CacheHits,
  CacheMisses,
  CacheDegradations,
  CacheStores,
  CacheConflictsReused,
  CacheConflictsRecomputed,
  CacheConflictsRemapped,
  ExamineRuns,
  ExamineConflicts,
  ExamineWorkerFailures,
  FrontendParseFailures,
  FrontendParseWarnings,
  NumCounters
};

/// Max-merged gauges (high-water marks). Order must match GaugeNames.
enum Gauge : unsigned {
  ExamineWorkers,
  UnifyingPeakBytes,
  LssPoolArenaBytes,
  NumGauges
};

/// Log2-bucketed histograms. Time histograms record nanoseconds; effort
/// histograms record raw counts. Order must match HistNames.
enum Hist : unsigned {
  TimeAnalysisNs,
  TimeAutomatonNs,
  TimeGraphBuildNs,
  TimeLssNs,
  TimeUnifyingNs,
  TimeNonunifyingNs,
  TimeConflictNs,
  TimeExamineAllNs,
  TimeWorkerBusyNs,
  TimeCacheLoadNs,
  TimeCacheStoreNs,
  EffortConflictConfigurations,
  NumHists
};

/// Stable dotted name for each id (e.g. "lss.expanded", "time.lss_ns").
const char *name(Counter C);
const char *name(Gauge G);
const char *name(Hist H);

/// Buckets per histogram: bucket i counts values v with bit_width(v) == i,
/// i.e. bucket 0 holds v == 0 and bucket i holds 2^(i-1) <= v < 2^i.
constexpr unsigned HistBuckets = 64;

} // namespace metric

/// Point-in-time merged view of a MetricsRegistry (or of several, via
/// merge()). Plain integers; safe to copy and inspect without the
/// registry's atomics.
class MetricsSnapshot {
public:
  struct HistData {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;
    uint64_t Buckets[metric::HistBuckets] = {};
  };

  uint64_t Counters[metric::NumCounters] = {};
  uint64_t Gauges[metric::NumGauges] = {};
  HistData Hists[metric::NumHists];

  uint64_t counter(metric::Counter C) const { return Counters[C]; }
  uint64_t gauge(metric::Gauge G) const { return Gauges[G]; }
  const HistData &hist(metric::Hist H) const { return Hists[H]; }

  /// Accumulates \p Other into this snapshot (counters and histogram
  /// fields add; gauges take the max).
  void merge(const MetricsSnapshot &Other);

  /// Human-readable table: one "name value" line per non-zero counter
  /// and gauge, and "name count=N sum=S mean=M max=X" per non-empty
  /// histogram, in id order.
  std::string renderText() const;

  /// Flattens every non-zero metric to (dotted-name, value) pairs, in id
  /// order. Histograms contribute name.count, name.sum, and name.max.
  std::vector<std::pair<std::string, uint64_t>> flatten() const;
};

/// Sharded lock-free metrics registry. Each thread is assigned a shard on
/// first use (round-robin over a fixed pool); all updates are relaxed
/// atomic adds/maxes on that shard, so concurrent writers never contend
/// on a line except by accidental shard collision. snapshot() sums the
/// shards. Counts are monotonically increasing; there is no reset.
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  void add(metric::Counter C, uint64_t N = 1) {
    shard().Counters[C].fetch_add(N, std::memory_order_relaxed);
  }

  void gaugeMax(metric::Gauge G, uint64_t V) {
    atomicMax(shard().Gauges[G], V);
  }

  void observe(metric::Hist H, uint64_t V) {
    Shard &S = shard();
    HistShard &HS = S.Hists[H];
    HS.Count.fetch_add(1, std::memory_order_relaxed);
    HS.Sum.fetch_add(V, std::memory_order_relaxed);
    atomicMax(HS.Max, V);
    HS.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Sums all shards into a coherent-enough view. Concurrent updates may
  /// or may not be included; values never go backwards.
  MetricsSnapshot snapshot() const;

  /// Bucket index for \p V: 0 for 0, otherwise bit_width(V).
  static unsigned bucketOf(uint64_t V);

private:
  struct HistShard {
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Max{0};
    std::atomic<uint64_t> Buckets[metric::HistBuckets] = {};
  };

  struct alignas(64) Shard {
    std::atomic<uint64_t> Counters[metric::NumCounters] = {};
    std::atomic<uint64_t> Gauges[metric::NumGauges] = {};
    HistShard Hists[metric::NumHists];
  };

  static constexpr unsigned NumShards = 16;

  Shard &shard();

  static void atomicMax(std::atomic<uint64_t> &Slot, uint64_t V) {
    uint64_t Cur = Slot.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  std::unique_ptr<Shard[]> Shards;
};

/// RAII wall-clock timer that records into a histogram on destruction.
/// With a null registry the constructor never reads the clock, so a
/// disabled pipeline pays only the null test.
class ScopedTimer {
public:
  ScopedTimer(MetricsRegistry *Reg, metric::Hist H) : Reg(Reg), Id(H) {
    if (Reg)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  /// Records now (idempotent); useful to end the interval before the
  /// enclosing scope does.
  void stop() {
    if (!Reg)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Reg->observe(Id, uint64_t(Ns < 0 ? 0 : Ns));
    Reg = nullptr;
  }

private:
  MetricsRegistry *Reg;
  metric::Hist Id;
  std::chrono::steady_clock::time_point Start;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_METRICS_H
