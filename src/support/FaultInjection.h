//===- support/FaultInjection.h - Deterministic fault hooks ----*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only fault injection for the counterexample pipeline.
///
/// Built only under -DLALRCEX_FAULT_INJECTION=ON; in regular builds every
/// hook collapses to the constant `false` and costs nothing. Each fault is
/// one-shot: it fires at the first hook whose step counter reaches the
/// armed step, then disarms itself, so a single armed fault perturbs
/// exactly one point of an otherwise deterministic search. Firing is an
/// atomic exchange, so the one-shot contract holds even when several
/// examineAll workers poll their guards concurrently. This is how
/// every degradation path (timeout, step limit, allocation failure,
/// cancellation, corrupt successor) gets a deterministic reproduction
/// without wall-clock games.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_FAULTINJECTION_H
#define LALRCEX_SUPPORT_FAULTINJECTION_H

#if defined(LALRCEX_FAULT_INJECTION)

#include <cstddef>

namespace lalrcex {
namespace faults {

/// Where and how the armed fault strikes.
enum class Kind : unsigned char {
  None,
  DeadlineAtStep,         ///< ResourceGuard reports Deadline at step >= N
  CancelAtStep,           ///< ResourceGuard reports Cancelled at step >= N
  BadAllocAtStep,         ///< unifying search throws std::bad_alloc
  CorruptSuccessorAtStep, ///< unifying search corrupts a configuration
  LssPathFailure,         ///< shortestLookaheadSensitivePath finds nothing
  NonunifyingBadAlloc,    ///< NonunifyingBuilder::build throws bad_alloc
  NonunifyingError,       ///< NonunifyingBuilder::build throws SearchError
  CacheCorrupt,           ///< AnalysisCache treats the next blob read as
                          ///< corrupt (forced cold recompute)
};

/// Arms one fault; any previously armed fault is replaced.
void arm(Kind K, std::size_t AtStep = 0);

/// Disarms whatever is armed.
void disarm();

/// \returns true (exactly once) if the armed fault matches \p K and
/// \p Step has reached its trigger step; firing disarms the fault.
bool fires(Kind K, std::size_t Step = 0);

/// RAII arming for tests: disarms on scope exit even if the test fails.
struct ScopedFault {
  explicit ScopedFault(Kind K, std::size_t AtStep = 0) { arm(K, AtStep); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
};

} // namespace faults
} // namespace lalrcex

#define LALRCEX_FAULT_FIRES(KIND, STEP)                                     \
  ::lalrcex::faults::fires(::lalrcex::faults::Kind::KIND, (STEP))

#else // !LALRCEX_FAULT_INJECTION

#define LALRCEX_FAULT_FIRES(KIND, STEP) false

#endif // LALRCEX_FAULT_INJECTION

#endif // LALRCEX_SUPPORT_FAULTINJECTION_H
