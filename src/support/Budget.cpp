//===- support/Budget.cpp --------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/FaultInjection.h"
#include "support/Metrics.h"

using namespace lalrcex;

static metric::Counter tripCounter(GuardStop S) {
  switch (S) {
  case GuardStop::MemoryLimit:
    return metric::GuardTripsMemoryLimit;
  case GuardStop::Deadline:
    return metric::GuardTripsDeadline;
  case GuardStop::Cancelled:
    return metric::GuardTripsCancelled;
  case GuardStop::StepLimit:
  case GuardStop::None:
    break;
  }
  return metric::GuardTripsStepLimit;
}

const char *lalrcex::toString(GuardStop S) {
  switch (S) {
  case GuardStop::None:
    return "none";
  case GuardStop::StepLimit:
    return "step-limit";
  case GuardStop::MemoryLimit:
    return "memory-limit";
  case GuardStop::Deadline:
    return "deadline";
  case GuardStop::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

ResourceGuard::ResourceGuard(const ResourceLimits &L, CancellationToken Tok)
    : Limits(L), Token(std::move(Tok)) {
  if (Limits.WallPollPeriod == 0)
    Limits.WallPollPeriod = 1;
  if (Limits.WallClockSeconds)
    Expiry = Deadline::afterSeconds(*Limits.WallClockSeconds);
}

void ResourceGuard::reset(const ResourceLimits &L, CancellationToken Tok) {
  Limits = L;
  if (Limits.WallPollPeriod == 0)
    Limits.WallPollPeriod = 1;
  Token = std::move(Tok);
  Expiry = Limits.WallClockSeconds
               ? Deadline::afterSeconds(*Limits.WallClockSeconds)
               : Deadline();
  Steps.store(0, std::memory_order_relaxed);
  Bytes.store(0, std::memory_order_relaxed);
  PeakBytes.store(0, std::memory_order_relaxed);
  NextPoll.store(0, std::memory_order_relaxed);
  Stop.store(GuardStop::None, std::memory_order_release);
}

GuardStop ResourceGuard::trip(GuardStop S) {
  // First trip wins: only the None -> S transition succeeds, so every
  // thread observes the same (earliest) reason no matter which brake it
  // hit itself.
  GuardStop Expected = GuardStop::None;
  if (Stop.compare_exchange_strong(Expected, S, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    if (MetricsRegistry *M = Metrics.load(std::memory_order_acquire))
      M->add(tripCounter(S));
  }
  return Stop.load(std::memory_order_acquire);
}

GuardStop ResourceGuard::poll(size_t StepsNow) {
  GuardStop S = Stop.load(std::memory_order_acquire);
  if (S != GuardStop::None)
    return S;
  if (LALRCEX_FAULT_FIRES(DeadlineAtStep, StepsNow))
    return trip(GuardStop::Deadline);
  if (LALRCEX_FAULT_FIRES(CancelAtStep, StepsNow))
    return trip(GuardStop::Cancelled);
  if (Token.cancelled())
    return trip(GuardStop::Cancelled);
  if (Expiry.expired())
    return trip(GuardStop::Deadline);
  return GuardStop::None;
}

GuardStop ResourceGuard::chargeSteps(size_t N) {
  GuardStop S = Stop.load(std::memory_order_acquire);
  if (S != GuardStop::None)
    return S;
  size_t Now = Steps.fetch_add(N, std::memory_order_relaxed) + N;
  if (Now > Limits.MaxSteps)
    return trip(GuardStop::StepLimit);
  // The wall clock and the token are polled on a step cadence so the hot
  // loop pays for a syscall / atomic load only every WallPollPeriod steps.
  // The very first charge polls too, so an already-expired deadline or a
  // pre-cancelled token trips deterministically before any work is done.
  // Under concurrent charging the advance of NextPoll races benignly: the
  // worst case is an extra poll, never a missed cadence.
  if (Now >= NextPoll.load(std::memory_order_relaxed)) {
    NextPoll.store(Now + Limits.WallPollPeriod, std::memory_order_relaxed);
    return poll(Now);
  }
  return GuardStop::None;
}

GuardStop ResourceGuard::chargeBytes(size_t Bytes_) {
  size_t Now = Bytes.fetch_add(Bytes_, std::memory_order_relaxed) + Bytes_;
  size_t Peak = PeakBytes.load(std::memory_order_relaxed);
  while (Now > Peak &&
         !PeakBytes.compare_exchange_weak(Peak, Now,
                                          std::memory_order_relaxed)) {
  }
  GuardStop S = Stop.load(std::memory_order_acquire);
  if (S != GuardStop::None)
    return S;
  if (Now > Limits.MaxBytes)
    return trip(GuardStop::MemoryLimit);
  return GuardStop::None;
}

void ResourceGuard::releaseBytes(size_t Bytes_) {
  // Clamp at zero without underflowing past a concurrent charge.
  size_t Cur = Bytes.load(std::memory_order_relaxed);
  while (!Bytes.compare_exchange_weak(Cur,
                                      Bytes_ > Cur ? 0 : Cur - Bytes_,
                                      std::memory_order_relaxed)) {
  }
}

GuardStop ResourceGuard::stop() {
  return poll(Steps.load(std::memory_order_relaxed));
}
