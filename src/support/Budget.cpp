//===- support/Budget.cpp --------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/FaultInjection.h"

using namespace lalrcex;

const char *lalrcex::toString(GuardStop S) {
  switch (S) {
  case GuardStop::None:
    return "none";
  case GuardStop::StepLimit:
    return "step-limit";
  case GuardStop::MemoryLimit:
    return "memory-limit";
  case GuardStop::Deadline:
    return "deadline";
  case GuardStop::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

ResourceGuard::ResourceGuard(const ResourceLimits &L, CancellationToken Tok)
    : Limits(L), Token(std::move(Tok)) {
  if (Limits.WallPollPeriod == 0)
    Limits.WallPollPeriod = 1;
  if (Limits.WallClockSeconds)
    Expiry = Deadline::afterSeconds(*Limits.WallClockSeconds);
}

GuardStop ResourceGuard::trip(GuardStop S) {
  if (Stop == GuardStop::None)
    Stop = S;
  return Stop;
}

GuardStop ResourceGuard::poll() {
  if (Stop != GuardStop::None)
    return Stop;
  if (LALRCEX_FAULT_FIRES(DeadlineAtStep, Steps))
    return trip(GuardStop::Deadline);
  if (LALRCEX_FAULT_FIRES(CancelAtStep, Steps))
    return trip(GuardStop::Cancelled);
  if (Token.cancelled())
    return trip(GuardStop::Cancelled);
  if (Expiry.expired())
    return trip(GuardStop::Deadline);
  return GuardStop::None;
}

GuardStop ResourceGuard::chargeSteps(size_t N) {
  if (Stop != GuardStop::None)
    return Stop;
  Steps += N;
  if (Steps > Limits.MaxSteps)
    return trip(GuardStop::StepLimit);
  // The wall clock and the token are polled on a step cadence so the hot
  // loop pays for a syscall / atomic load only every WallPollPeriod steps.
  // The very first charge polls too, so an already-expired deadline or a
  // pre-cancelled token trips deterministically before any work is done.
  if (Steps >= NextPoll) {
    NextPoll = Steps + Limits.WallPollPeriod;
    return poll();
  }
  return GuardStop::None;
}

GuardStop ResourceGuard::chargeBytes(size_t Bytes_) {
  Bytes += Bytes_;
  if (Bytes > PeakBytes)
    PeakBytes = Bytes;
  if (Stop != GuardStop::None)
    return Stop;
  if (Bytes > Limits.MaxBytes)
    return trip(GuardStop::MemoryLimit);
  return GuardStop::None;
}

void ResourceGuard::releaseBytes(size_t Bytes_) {
  Bytes = Bytes_ > Bytes ? 0 : Bytes - Bytes_;
}

GuardStop ResourceGuard::stop() { return poll(); }
