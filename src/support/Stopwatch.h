//===- support/Stopwatch.h - Wall-clock timing helpers ---------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic stopwatch and deadline types used to enforce the paper's
/// per-conflict (5 s) and cumulative (2 min) search budgets (paper §6).
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_STOPWATCH_H
#define LALRCEX_SUPPORT_STOPWATCH_H

#include <chrono>

namespace lalrcex {

/// Measures elapsed wall-clock time from construction (or last restart).
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A point in time after which work should be abandoned. A
/// default-constructed Deadline never expires.
class Deadline {
public:
  Deadline() = default;

  /// Creates a deadline \p Seconds from now. Non-positive budgets create an
  /// already-expired deadline.
  static Deadline afterSeconds(double Seconds) {
    Deadline D;
    D.Armed = true;
    D.Expiry = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(Seconds));
    return D;
  }

  /// A deadline that never expires.
  static Deadline unlimited() { return Deadline(); }

  bool expired() const { return Armed && Clock::now() >= Expiry; }

  /// Seconds remaining; a large value when unlimited.
  double remainingSeconds() const {
    if (!Armed)
      return 1e18;
    return std::chrono::duration<double>(Expiry - Clock::now()).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  bool Armed = false;
  Clock::time_point Expiry;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_STOPWATCH_H
