//===- support/StrUtil.h - Small string helpers ----------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_STRUTIL_H
#define LALRCEX_SUPPORT_STRUTIL_H

#include <string>
#include <vector>

namespace lalrcex {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Formats \p Seconds with three decimal places (e.g. "0.072").
std::string formatSeconds(double Seconds);

/// Pads \p S on the left with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S on the right with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_STRUTIL_H
