//===- support/StrUtil.h - Small string helpers ----------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_STRUTIL_H
#define LALRCEX_SUPPORT_STRUTIL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lalrcex {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Formats \p Seconds with three decimal places (e.g. "0.072").
std::string formatSeconds(double Seconds);

/// Pads \p S on the left with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S on the right with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

/// Strictly parses \p S as a non-negative decimal integer no larger than
/// \p Max. Returns nullopt for an empty string, any non-digit character
/// (including signs and whitespace), or a value out of range. Use this
/// instead of std::atoi for every numeric CLI argument and directive:
/// atoi silently maps garbage to 0 and wraps negatives through unsigned.
std::optional<uint64_t> parseUnsigned(const std::string &S,
                                      uint64_t Max = UINT64_MAX);

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_STRUTIL_H
