//===- support/Trace.h - RAII trace spans + Chrome exporter ----*- C++ -*-===//
//
// Part of lalrcex.
//
// Lightweight phase tracing: a TraceSpan marks a region of wall time with
// a static name, its parent span (tracked per thread), and an optional
// conflict id. Finished spans land in a fixed-capacity ring buffer inside
// a TraceRecorder, which can serialize them in Chrome's trace_event JSON
// format (load via chrome://tracing or Perfetto). Spans are coarse —
// one per pipeline phase, not per search step — so the recorder uses a
// plain mutex; the per-step hot paths go through MetricsRegistry instead.
// Like metrics, every site takes a nullable recorder pointer and a null
// recorder reduces a span to a pointer test.
//
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_SUPPORT_TRACE_H
#define LALRCEX_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lalrcex {

/// Collects finished spans into a bounded ring buffer. When the buffer is
/// full the oldest events are overwritten and counted in dropped().
class TraceRecorder {
public:
  struct Event {
    const char *Name;   ///< Static phase name (not owned).
    uint64_t StartNs;   ///< Start, ns since the recorder's epoch.
    uint64_t DurNs;     ///< Wall duration in ns.
    uint32_t Tid;       ///< Small per-thread id.
    uint64_t Id;        ///< Span id, unique within the recorder.
    uint64_t Parent;    ///< Enclosing span id on the same thread; 0 = none.
    int64_t ConflictId; ///< Conflict index, or -1 when not conflict-scoped.
  };

  explicit TraceRecorder(size_t Capacity = 1 << 16);

  /// Events in completion order (oldest surviving first).
  std::vector<Event> events() const;

  /// Number of events overwritten because the ring was full.
  uint64_t dropped() const;

  /// Serializes the buffer as a Chrome trace_event JSON object
  /// ({"displayTimeUnit":"ms","traceEvents":[...]}); timestamps and
  /// durations are microseconds relative to the recorder's epoch.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to \p Path. Returns false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;

  /// Nanoseconds since the recorder's construction.
  uint64_t nowNs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - Epoch)
                        .count());
  }

private:
  friend class TraceSpan;

  void record(const Event &E);
  uint64_t nextSpanId() {
    return NextId.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  static uint32_t threadId();

  std::chrono::steady_clock::time_point Epoch;
  std::atomic<uint64_t> NextId{0};

  mutable std::mutex Mu;
  std::vector<Event> Ring;
  size_t Capacity;
  size_t Next = 0;    ///< Next slot to write (wraps).
  bool Wrapped = false;
  uint64_t Dropped = 0;
};

/// RAII span. Construct at phase entry with a string literal name;
/// destruction records the event. Parent linkage follows strict nesting
/// per thread: the innermost live span on the constructing thread (for
/// the same recorder) becomes the parent.
class TraceSpan {
public:
  TraceSpan(TraceRecorder *Rec, const char *Name, int64_t ConflictId = -1);
  ~TraceSpan();
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Span id within the recorder (0 when the recorder is null).
  uint64_t id() const { return Id; }

private:
  TraceRecorder *Rec;
  const char *Name;
  uint64_t StartNs = 0;
  uint64_t Id = 0;
  uint64_t Parent = 0;
  TraceRecorder *SavedRec = nullptr;
  uint64_t SavedParent = 0;
  int64_t ConflictId;
};

} // namespace lalrcex

#endif // LALRCEX_SUPPORT_TRACE_H
