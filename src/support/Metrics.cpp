//===- support/Metrics.cpp ------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <bit>
#include <cassert>
#include <cstdio>

using namespace lalrcex;

namespace {

const char *const CounterNames[metric::NumCounters] = {
    "analysis.runs",
    "analysis.nullable_passes",
    "analysis.first_passes",
    "analysis.follow_passes",
    "analysis.minyield_passes",
    "automaton.builds",
    "automaton.states",
    "automaton.closure_items",
    "automaton.kernel_la_passes",
    "automaton.closure_la_passes",
    "automaton.states_reused",
    "automaton.states_rebuilt",
    "automaton.states_added",
    "graph.builds",
    "graph.nodes",
    "graph.edges",
    "lss.searches",
    "lss.expanded",
    "lss.enqueued",
    "lss.dominance_pruned",
    "lss.subset_checks",
    "lss.union_calls",
    "lss.union_cache_hits",
    "unifying.searches",
    "unifying.configurations",
    "unifying.queue_pushes",
    "unifying.queue_pops",
    "unifying.found",
    "unifying.exhausted",
    "unifying.budget_stops",
    "search.tasks_stolen",
    "search.steal_failures",
    "search.bucket_barriers",
    "nonunifying.builds",
    "nonunifying.failures",
    "guard.trips.step_limit",
    "guard.trips.memory_limit",
    "guard.trips.deadline",
    "guard.trips.cancelled",
    "cache.hits",
    "cache.misses",
    "cache.degradations",
    "cache.stores",
    "cache.conflicts_reused",
    "cache.conflicts_recomputed",
    "cache.conflicts_remapped",
    "examine.runs",
    "examine.conflicts",
    "examine.worker_failures",
    "frontend.parse_failures",
    "frontend.parse_warnings",
};

const char *const GaugeNames[metric::NumGauges] = {
    "examine.workers",
    "unifying.peak_bytes",
    "lss.pool_arena_bytes",
};

const char *const HistNames[metric::NumHists] = {
    "time.analysis_ns",
    "time.automaton_ns",
    "time.graph_build_ns",
    "time.lss_ns",
    "time.unifying_ns",
    "time.nonunifying_ns",
    "time.conflict_ns",
    "time.examine_all_ns",
    "time.worker_busy_ns",
    "time.cache_load_ns",
    "time.cache_store_ns",
    "effort.conflict_configurations",
};

} // namespace

const char *metric::name(metric::Counter C) {
  assert(C < metric::NumCounters);
  return CounterNames[C];
}

const char *metric::name(metric::Gauge G) {
  assert(G < metric::NumGauges);
  return GaugeNames[G];
}

const char *metric::name(metric::Hist H) {
  assert(H < metric::NumHists);
  return HistNames[H];
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry::MetricsRegistry() : Shards(new Shard[NumShards]) {}

MetricsRegistry::~MetricsRegistry() = default;

unsigned MetricsRegistry::bucketOf(uint64_t V) {
  // bit_width(0) == 0, so bucket 0 holds exactly the zero values and
  // bucket i (i >= 1) holds [2^(i-1), 2^i).
  return unsigned(std::bit_width(V));
}

MetricsRegistry::Shard &MetricsRegistry::shard() {
  // Each thread picks a shard once, round-robin over the pool. The index
  // is per-thread but the registry is per-run, so different registries
  // share the assignment; that only affects which shard a thread lands
  // on, never correctness.
  static std::atomic<unsigned> GlobalThreadCounter{0};
  thread_local unsigned Idx =
      GlobalThreadCounter.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shards[Idx];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  for (unsigned S = 0; S != NumShards; ++S) {
    const Shard &Sh = Shards[S];
    for (unsigned C = 0; C != metric::NumCounters; ++C)
      Snap.Counters[C] += Sh.Counters[C].load(std::memory_order_relaxed);
    for (unsigned G = 0; G != metric::NumGauges; ++G) {
      uint64_t V = Sh.Gauges[G].load(std::memory_order_relaxed);
      if (V > Snap.Gauges[G])
        Snap.Gauges[G] = V;
    }
    for (unsigned H = 0; H != metric::NumHists; ++H) {
      const HistShard &HS = Sh.Hists[H];
      MetricsSnapshot::HistData &D = Snap.Hists[H];
      D.Count += HS.Count.load(std::memory_order_relaxed);
      D.Sum += HS.Sum.load(std::memory_order_relaxed);
      uint64_t M = HS.Max.load(std::memory_order_relaxed);
      if (M > D.Max)
        D.Max = M;
      for (unsigned B = 0; B != metric::HistBuckets; ++B)
        D.Buckets[B] += HS.Buckets[B].load(std::memory_order_relaxed);
    }
  }
  return Snap;
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (unsigned C = 0; C != metric::NumCounters; ++C)
    Counters[C] += Other.Counters[C];
  for (unsigned G = 0; G != metric::NumGauges; ++G)
    if (Other.Gauges[G] > Gauges[G])
      Gauges[G] = Other.Gauges[G];
  for (unsigned H = 0; H != metric::NumHists; ++H) {
    HistData &D = Hists[H];
    const HistData &O = Other.Hists[H];
    D.Count += O.Count;
    D.Sum += O.Sum;
    if (O.Max > D.Max)
      D.Max = O.Max;
    for (unsigned B = 0; B != metric::HistBuckets; ++B)
      D.Buckets[B] += O.Buckets[B];
  }
}

std::string MetricsSnapshot::renderText() const {
  std::string Out;
  char Buf[160];
  for (unsigned C = 0; C != metric::NumCounters; ++C) {
    if (Counters[C] == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%-32s %llu\n",
                  metric::name(metric::Counter(C)),
                  (unsigned long long)Counters[C]);
    Out += Buf;
  }
  for (unsigned G = 0; G != metric::NumGauges; ++G) {
    if (Gauges[G] == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%-32s %llu\n",
                  metric::name(metric::Gauge(G)),
                  (unsigned long long)Gauges[G]);
    Out += Buf;
  }
  for (unsigned H = 0; H != metric::NumHists; ++H) {
    const HistData &D = Hists[H];
    if (D.Count == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "%-32s count=%llu sum=%llu mean=%llu max=%llu\n",
                  metric::name(metric::Hist(H)), (unsigned long long)D.Count,
                  (unsigned long long)D.Sum,
                  (unsigned long long)(D.Sum / D.Count),
                  (unsigned long long)D.Max);
    Out += Buf;
  }
  return Out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsSnapshot::flatten() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (unsigned C = 0; C != metric::NumCounters; ++C)
    if (Counters[C] != 0)
      Out.emplace_back(metric::name(metric::Counter(C)), Counters[C]);
  for (unsigned G = 0; G != metric::NumGauges; ++G)
    if (Gauges[G] != 0)
      Out.emplace_back(metric::name(metric::Gauge(G)), Gauges[G]);
  for (unsigned H = 0; H != metric::NumHists; ++H) {
    const HistData &D = Hists[H];
    if (D.Count == 0)
      continue;
    std::string Base = metric::name(metric::Hist(H));
    Out.emplace_back(Base + ".count", D.Count);
    Out.emplace_back(Base + ".sum", D.Sum);
    Out.emplace_back(Base + ".max", D.Max);
  }
  return Out;
}
