//===- lexer/Lexer.cpp ------------------------------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <algorithm>
#include <cctype>

using namespace lalrcex;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isAlphabetic(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isalpha(static_cast<unsigned char>(C)))
      return false;
  return true;
}

} // namespace

LexSpec LexSpec::fromGrammar(const Grammar &G) {
  LexSpec Spec(G);
  for (unsigned T = 1; T != G.numTerminals(); ++T) {
    Symbol S{int32_t(T)};
    const std::string &Name = G.name(S);
    if (Name.size() >= 3 && (Name.front() == '\'' || Name.front() == '"') &&
        Name.back() == Name.front()) {
      // Quoted terminal: the spelling is the content between the quotes.
      Spec.literal(Name.substr(1, Name.size() - 2), S);
    } else if (isAlphabetic(Name)) {
      // Keyword-style terminal (if, then, else, ...).
      Spec.literal(Name, S);
    }
    // Other terminals (NUM, IDENT, COMPARISON, ...) are wired manually.
  }
  return Spec;
}

LexSpec &LexSpec::literal(const std::string &Text, Symbol Terminal) {
  Literals.emplace_back(Text, Terminal);
  // Keep longest-first so maximal munch is a linear scan.
  std::sort(Literals.begin(), Literals.end(),
            [](const auto &A, const auto &B) {
              if (A.first.size() != B.first.size())
                return A.first.size() > B.first.size();
              return A.first < B.first;
            });
  return *this;
}

LexOutcome LexSpec::tokenize(const std::string &Text) const {
  LexOutcome Out;
  size_t Pos = 0;
  const size_t N = Text.size();

  auto fail = [&Out](size_t At, const std::string &Msg) {
    Out.Ok = false;
    Out.ErrorOffset = At;
    Out.ErrorMessage =
        "lex error at offset " + std::to_string(At) + ": " + Msg;
    return Out;
  };

  while (Pos < N) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < N && Text[Pos + 1] == '/') {
      while (Pos < N && Text[Pos] != '\n')
        ++Pos;
      continue;
    }

    // Identifiers and keywords: lex the whole word, then prefer an exact
    // literal (keyword) match over the identifier rule.
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < N && isIdentChar(Text[Pos]))
        ++Pos;
      std::string Word = Text.substr(Start, Pos - Start);
      Symbol Terminal = IdentTerminal;
      for (const auto &[Spelling, Sym] : Literals) {
        if (Spelling == Word) {
          Terminal = Sym;
          break;
        }
      }
      if (!Terminal.valid())
        return fail(Start, "unexpected word '" + Word + "'");
      Out.Tokens.push_back(Token{Terminal, Word, Start});
      continue;
    }

    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      if (!NumberTerminal.valid())
        return fail(Pos, "numbers are not part of this language");
      size_t Start = Pos;
      while (Pos < N && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      if (Pos + 1 < N && Text[Pos] == '.' &&
          std::isdigit(static_cast<unsigned char>(Text[Pos + 1]))) {
        ++Pos;
        while (Pos < N &&
               std::isdigit(static_cast<unsigned char>(Text[Pos])))
          ++Pos;
      }
      Out.Tokens.push_back(
          Token{NumberTerminal, Text.substr(Start, Pos - Start), Start});
      continue;
    }

    // String literals.
    if (C == '"' && StringTerminal.valid()) {
      size_t Start = Pos++;
      std::string Value;
      while (Pos < N && Text[Pos] != '"') {
        if (Text[Pos] == '\\' && Pos + 1 < N)
          ++Pos;
        Value += Text[Pos++];
      }
      if (Pos == N)
        return fail(Start, "unterminated string literal");
      ++Pos; // closing quote
      Out.Tokens.push_back(Token{StringTerminal, Value, Start});
      continue;
    }

    // Punctuation literals, longest first.
    bool Matched = false;
    for (const auto &[Spelling, Sym] : Literals) {
      if (Text.compare(Pos, Spelling.size(), Spelling) == 0) {
        // Alphabetic literals were handled by the word rule; skip them so
        // "thenX" does not lex as "then" + "X".
        if (isIdentStart(Spelling[0]))
          continue;
        Out.Tokens.push_back(Token{Sym, Spelling, Pos});
        Pos += Spelling.size();
        Matched = true;
        break;
      }
    }
    if (!Matched)
      return fail(Pos, std::string("unexpected character '") + C + "'");
  }

  Out.Ok = true;
  return Out;
}
