//===- lexer/Lexer.h - Tokenizer substrate ----------------------*- C++ -*-===//
//
// Part of lalrcex.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small maximal-munch tokenizer that turns real program text into the
/// terminal symbols of a Grammar, so the parser runtime and the examples
/// can run on actual input rather than space-separated token names. (The
/// paper's CUP implementation pairs with a JFlex lexer; this is the
/// equivalent substrate.)
///
/// A LexSpec maps surface syntax to terminals three ways:
///   - literals: exact strings ("(", ":=", "then"), longest match wins;
///   - an identifier rule: [A-Za-z_][A-Za-z0-9_]* for names that are not
///     literal keywords;
///   - a number rule: [0-9]+ (with optional fraction).
///
/// LexSpec::fromGrammar derives a spec automatically: quoted terminals
/// ('+', ':=') become literals with the quotes stripped, purely
/// alphabetic lowercase terminal names become keywords, and the caller
/// wires identifier/number terminals explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef LALRCEX_LEXER_LEXER_H
#define LALRCEX_LEXER_LEXER_H

#include "grammar/Grammar.h"

#include <string>
#include <vector>

namespace lalrcex {

/// A lexed token: the terminal symbol plus the matched text and offset.
struct Token {
  Symbol Terminal;
  std::string Text;
  size_t Offset = 0;
};

/// Result of tokenizing a string.
struct LexOutcome {
  bool Ok = false;
  std::vector<Token> Tokens;
  size_t ErrorOffset = 0;
  std::string ErrorMessage;

  /// Just the terminal symbols, ready for LrParser::parse.
  std::vector<Symbol> symbols() const {
    std::vector<Symbol> Out;
    Out.reserve(Tokens.size());
    for (const Token &T : Tokens)
      Out.push_back(T.Terminal);
    return Out;
  }
};

/// Maps surface text to the terminals of one grammar.
class LexSpec {
public:
  /// Derives a spec from \p G: quoted terminals become literals (quotes
  /// stripped) and alphabetic terminal names become keywords. Identifier
  /// and number terminals must still be wired via identifiers()/numbers().
  static LexSpec fromGrammar(const Grammar &G);

  /// An empty spec for \p G (everything wired manually).
  explicit LexSpec(const Grammar &G) : G(&G) {}

  /// Maps the exact string \p Text to \p Terminal.
  LexSpec &literal(const std::string &Text, Symbol Terminal);

  /// Identifiers ([A-Za-z_][A-Za-z0-9_]*) that are not keywords lex as
  /// \p Terminal.
  LexSpec &identifiers(Symbol Terminal) {
    IdentTerminal = Terminal;
    return *this;
  }

  /// Numbers ([0-9]+ with optional ".[0-9]+") lex as \p Terminal.
  LexSpec &numbers(Symbol Terminal) {
    NumberTerminal = Terminal;
    return *this;
  }

  /// Double-quoted string literals (with backslash escapes) lex as
  /// \p Terminal.
  LexSpec &strings(Symbol Terminal) {
    StringTerminal = Terminal;
    return *this;
  }

  /// Tokenizes \p Text. Whitespace separates tokens and is skipped; "//"
  /// comments run to end of line.
  LexOutcome tokenize(const std::string &Text) const;

private:
  const Grammar *G;
  /// Literal spellings, each mapping to a terminal. Matched longest-first.
  std::vector<std::pair<std::string, Symbol>> Literals;
  Symbol IdentTerminal;
  Symbol NumberTerminal;
  Symbol StringTerminal;
};

} // namespace lalrcex

#endif // LALRCEX_LEXER_LEXER_H
