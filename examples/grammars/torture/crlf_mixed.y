%token A
%token B%%
s : A
  | B ;
