%token STR "no closing quote
%%
s : STR
