%{
prologue never closed
int x;
