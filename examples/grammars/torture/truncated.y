%token TRUNCATED
%%
s : a b
  | c