/* A SQL grammar at sqlite3 scale, following the rule inventory of
 * sqlite's parse.y (statements, compound selects, joins, expressions,
 * triggers, window functions) transcribed into yacc form. Operator
 * precedence mirrors sqlite's declarations; the %expect values below are
 * the counts computed by this repository's own LALR construction (see
 * examples/diff_conflicts.cpp, which cross-checks them on every CI run).
 */
%token ABORT ACTION ADD AFTER ALL ALTER ANALYZE AND AS ASC ATTACH
%token AUTOINCR BEFORE BEGIN BETWEEN BY CASCADE CASE CAST CHECK COLLATE
%token COLUMNKW COMMA COMMIT CONFLICT CONSTRAINT CREATE CROSS CURRENT
%token DATABASE DEFAULT DEFERRABLE DEFERRED DELETE DESC DETACH DISTINCT
%token DO DOT DROP EACH ELSE END ESCAPE EXCEPT EXCLUDE EXCLUSIVE EXISTS
%token EXPLAIN FAIL FILTER FIRST FLOAT FOLLOWING FOR FOREIGN FROM FULL
%token GENERATED GROUP GROUPS HAVING ID IF IGNORE IMMEDIATE IN INDEX
%token INDEXED INITIALLY INNER INSERT INSTEAD INTEGER INTERSECT INTO IS
%token ISNULL JOIN KEY LAST LEFT LIKE_KW LIMIT LP MATCH MATERIALIZED
%token NATURAL NO NOT NOTHING NOTNULL NULL NULLS OF OFFSET ON OR ORDER
%token OTHERS OUTER OVER PARTITION PLAN PRAGMA PRECEDING PRIMARY QUERY
%token RAISE RANGE RECURSIVE REFERENCES REINDEX RELEASE RENAME REPLACE
%token RESTRICT RETURNING RIGHT ROLLBACK ROW ROWS RP SAVEPOINT SELECT
%token SEMI SET STRING TABLE TEMP THEN TIES TO TRANSACTION TRIGGER
%token UNBOUNDED UNION UNIQUE UPDATE USING VACUUM VALUES VARIABLE VIEW
%token VIRTUAL WHEN WHERE WINDOW WITH WITHOUT
%token NE EQ GT LE LT GE BITAND BITOR LSHIFT RSHIFT PLUS MINUS STAR
%token SLASH REM CONCAT PTR BITNOT UMINUS UPLUS BLOB

%left OR
%left AND
%right NOT
%left IS MATCH LIKE_KW BETWEEN IN ISNULL NOTNULL NE EQ
%left GT LE LT GE
%right ESCAPE
%left BITAND BITOR LSHIFT RSHIFT
%left PLUS MINUS
%left STAR SLASH REM
%left CONCAT PTR
%left COLLATE
%right BITNOT
%nonassoc ON

/* Five shift/reduce conflicts are the dangling ON after nested join
 * sources (shift, the ON binds to the nearest join, is right); the two
 * reduce/reduce conflicts are the genuine "a IS NOT b AND c" and
 * "a BETWEEN b AND c AND d" ambiguities, settled by rule order. */
%start input
%expect 5
%expect-rr 2
%%

input : cmdlist ;
cmdlist : cmdlist ecmd | ecmd ;
ecmd : SEMI
     | cmdx SEMI
     | explain cmdx SEMI
     ;
explain : EXPLAIN | EXPLAIN QUERY PLAN ;
cmdx : cmd ;

/********************** Transactions *************************************/
cmd : BEGIN transtype trans_opt
    | COMMIT trans_opt
    | END trans_opt
    | ROLLBACK trans_opt
    | SAVEPOINT nm
    | RELEASE savepoint_opt nm
    | ROLLBACK trans_opt TO savepoint_opt nm
    ;
trans_opt : | TRANSACTION | TRANSACTION nm ;
transtype : | DEFERRED | IMMEDIATE | EXCLUSIVE ;
savepoint_opt : SAVEPOINT | ;

/********************** CREATE TABLE *************************************/
cmd : create_table create_table_args ;
create_table : createkw temp TABLE ifnotexists nm dbnm ;
createkw : CREATE ;
ifnotexists : | IF NOT EXISTS ;
temp : TEMP | ;
create_table_args : LP columnlist conslist_opt RP table_option_set
                  | AS select
                  ;
table_option_set : | table_option_set COMMA table_option | table_option ;
table_option : WITHOUT nm | nm ;
columnlist : columnlist COMMA columnname carglist
           | columnname carglist
           ;
columnname : nm typetoken ;

nm : ID | STRING | JOIN ;

typetoken : | typename
          | typename LP signed RP
          | typename LP signed COMMA signed RP
          ;
typename : ids | typename ids ;
ids : ID | STRING ;
signed : plus_num | minus_num ;
plus_num : PLUS number | number ;
minus_num : MINUS number ;
number : INTEGER | FLOAT ;

carglist : carglist ccons | ;
ccons : CONSTRAINT nm
      | DEFAULT scantok term
      | DEFAULT LP expr RP
      | DEFAULT PLUS scantok term
      | DEFAULT MINUS scantok term
      | DEFAULT scantok ID
      | NULL onconf
      | NOT NULL onconf
      | PRIMARY KEY sortorder onconf autoinc
      | UNIQUE onconf
      | CHECK LP expr RP
      | REFERENCES nm eidlist_opt refargs
      | defer_subclause
      | COLLATE ids
      | GENERATED ALWAYS AS LP expr RP generated_type
      | AS LP expr RP generated_type
      ;
generated_type : | ID ;
scantok : ;
autoinc : | AUTOINCR ;
refargs : | refargs refarg ;
refarg : MATCH nm
       | ON INSERT refact
       | ON DELETE refact
       | ON UPDATE refact
       ;
refact : SET NULL
       | SET DEFAULT
       | CASCADE
       | RESTRICT
       | NO ACTION
       ;
defer_subclause : NOT DEFERRABLE init_deferred_pred_opt
                | DEFERRABLE init_deferred_pred_opt
                ;
init_deferred_pred_opt : | INITIALLY DEFERRED | INITIALLY IMMEDIATE ;
conslist_opt : | COMMA conslist ;
conslist : conslist tconscomma tcons | tcons ;
tconscomma : COMMA | ;
tcons : CONSTRAINT nm
      | PRIMARY KEY LP sortlist autoinc RP onconf
      | UNIQUE LP sortlist RP onconf
      | CHECK LP expr RP onconf
      | FOREIGN KEY LP eidlist RP REFERENCES nm eidlist_opt refargs defer_subclause_opt
      ;
defer_subclause_opt : | defer_subclause ;
onconf : | ON CONFLICT resolvetype ;
orconf : | OR resolvetype ;
resolvetype : raisetype | IGNORE | REPLACE ;

/********************** DROP / CREATE VIEW *******************************/
cmd : DROP TABLE ifexists fullname ;
ifexists : IF EXISTS | ;
cmd : createkw temp VIEW ifnotexists nm dbnm eidlist_opt AS select ;
cmd : DROP VIEW ifexists fullname ;

/********************** SELECT *******************************************/
cmd : select ;
select : selectnowith
       | WITH wqlist selectnowith
       | WITH RECURSIVE wqlist selectnowith
       ;
selectnowith : oneselect
             | selectnowith multiselect_op oneselect
             ;
multiselect_op : UNION | UNION ALL | EXCEPT | INTERSECT ;
oneselect : SELECT distinct selcollist from where_opt groupby_opt having_opt orderby_opt limit_opt
          | SELECT distinct selcollist from where_opt groupby_opt having_opt window_clause orderby_opt limit_opt
          | values
          ;
values : VALUES LP nexprlist RP
       | values COMMA LP nexprlist RP
       ;
distinct : DISTINCT | ALL | ;
sclp : selcollist COMMA | ;
selcollist : sclp scanpt expr scanpt as
           | sclp scanpt STAR
           | sclp scanpt nm DOT STAR
           ;
as : AS nm | ids | ;
scanpt : ;
from : | FROM seltablist ;
stl_prefix : seltablist joinop | ;
seltablist : stl_prefix nm dbnm as on_using
           | stl_prefix nm dbnm as indexed_by on_using
           | stl_prefix nm dbnm LP exprlist RP as on_using
           | stl_prefix LP select RP as on_using
           | stl_prefix LP seltablist RP as on_using
           ;
dbnm : | DOT nm ;
fullname : nm | nm DOT nm ;
xfullname : nm
          | nm DOT nm
          | nm DOT nm AS nm
          | nm AS nm
          ;
joinop : COMMA
       | JOIN
       | NATURAL join_kw JOIN
       | join_kw JOIN
       ;
join_kw : LEFT | LEFT OUTER | RIGHT | RIGHT OUTER | FULL | FULL OUTER
        | INNER | CROSS ;
on_using : ON expr
         | USING LP idlist RP
         |
         ;
indexed_opt : | indexed_by ;
indexed_by : INDEXED BY nm | NOT INDEXED ;
orderby_opt : | ORDER BY sortlist ;
sortlist : sortlist COMMA expr sortorder nulls
         | expr sortorder nulls
         ;
sortorder : ASC | DESC | ;
nulls : NULLS FIRST | NULLS LAST | ;
groupby_opt : | GROUP BY nexprlist ;
having_opt : | HAVING expr ;
limit_opt : | LIMIT expr
           | LIMIT expr OFFSET expr
           | LIMIT expr COMMA expr
           ;

/********************** DELETE / UPDATE **********************************/
cmd : with DELETE FROM xfullname indexed_opt where_opt_ret ;
where_opt : | WHERE expr ;
where_opt_ret : | WHERE expr
              | RETURNING selcollist
              | WHERE expr RETURNING selcollist
              ;
cmd : with UPDATE orconf xfullname indexed_opt SET setlist from where_opt_ret ;
setlist : setlist COMMA nm EQ expr
        | setlist COMMA LP idlist RP EQ expr
        | nm EQ expr
        | LP idlist RP EQ expr
        ;

/********************** INSERT *******************************************/
cmd : with insert_cmd INTO xfullname idlist_opt select upsert
    | with insert_cmd INTO xfullname idlist_opt DEFAULT VALUES returning
    ;
upsert : returning
       | ON CONFLICT LP sortlist RP where_opt DO UPDATE SET setlist where_opt upsert
       | ON CONFLICT LP sortlist RP where_opt DO NOTHING upsert
       | ON CONFLICT DO NOTHING returning
       | ON CONFLICT DO UPDATE SET setlist where_opt returning
       ;
returning : | RETURNING selcollist ;
insert_cmd : INSERT orconf | REPLACE ;
idlist_opt : | LP idlist RP ;
idlist : idlist COMMA nm | nm ;

/********************** Expressions **************************************/
expr : term
     | LP expr RP
     | ID
     | JOIN
     | nm DOT nm
     | nm DOT nm DOT nm
     | VARIABLE
     | expr COLLATE ids
     | CAST LP expr AS typetoken RP
     | ID LP distinct exprlist RP
     | ID LP distinct exprlist ORDER BY sortlist RP
     | ID LP STAR RP
     | ID LP distinct exprlist RP filter_over
     | ID LP STAR RP filter_over
     | LP nexprlist COMMA expr RP
     | expr AND expr
     | expr OR expr
     | expr LT expr
     | expr GT expr
     | expr GE expr
     | expr LE expr
     | expr EQ expr
     | expr NE expr
     | expr BITAND expr
     | expr BITOR expr
     | expr LSHIFT expr
     | expr RSHIFT expr
     | expr PLUS expr
     | expr MINUS expr
     | expr STAR expr
     | expr SLASH expr
     | expr REM expr
     | expr CONCAT expr
     | expr PTR expr
     | expr likeop expr %prec LIKE_KW
     | expr likeop expr ESCAPE expr %prec LIKE_KW
     | expr ISNULL
     | expr NOTNULL
     | expr NOT NULL %prec IS
     | expr IS expr
     | expr IS NOT expr
     | expr IS NOT DISTINCT FROM expr %prec IS
     | expr IS DISTINCT FROM expr %prec IS
     | NOT expr
     | BITNOT expr
     | PLUS expr %prec BITNOT
     | MINUS expr %prec BITNOT
     | expr between_op expr AND expr %prec BETWEEN
     | expr in_op LP exprlist RP %prec IN
     | expr in_op LP select RP %prec IN
     | expr in_op nm dbnm paren_exprlist %prec IN
     | LP select RP
     | EXISTS LP select RP
     | CASE case_operand case_exprlist case_else END
     | RAISE LP IGNORE RP
     | RAISE LP raisetype COMMA nm RP
     ;
term : NULL | FLOAT | BLOB | STRING | INTEGER ;
likeop : LIKE_KW | NOT LIKE_KW | MATCH | NOT MATCH ;
between_op : BETWEEN | NOT BETWEEN ;
in_op : IN | NOT IN ;
case_exprlist : case_exprlist WHEN expr THEN expr
              | WHEN expr THEN expr
              ;
case_else : ELSE expr | ;
case_operand : expr | ;
exprlist : nexprlist | ;
nexprlist : nexprlist COMMA expr | expr ;
paren_exprlist : | LP exprlist RP ;
raisetype : ROLLBACK | ABORT | FAIL ;

/********************** CREATE INDEX *************************************/
cmd : createkw uniqueflag INDEX ifnotexists nm dbnm ON nm LP sortlist RP where_opt ;
uniqueflag : UNIQUE | ;
eidlist_opt : | LP eidlist RP ;
eidlist : eidlist COMMA nm collate sortorder
        | nm collate sortorder
        ;
collate : | COLLATE ids ;
cmd : DROP INDEX ifexists fullname ;

/********************** PRAGMA / VACUUM **********************************/
cmd : VACUUM vinto
    | VACUUM nm vinto
    ;
vinto : INTO expr | ;
cmd : PRAGMA nm dbnm
    | PRAGMA nm dbnm EQ nmnum
    | PRAGMA nm dbnm LP nmnum RP
    | PRAGMA nm dbnm EQ minus_num
    | PRAGMA nm dbnm LP minus_num RP
    ;
nmnum : plus_num | nm | ON | DELETE | DEFAULT ;

/********************** Triggers *****************************************/
cmd : createkw trigger_decl BEGIN trigger_cmd_list END ;
trigger_decl : temp TRIGGER ifnotexists nm dbnm trigger_time trigger_event ON fullname foreach_clause when_clause ;
trigger_time : BEFORE | AFTER | INSTEAD OF | ;
trigger_event : DELETE | INSERT | UPDATE | UPDATE OF idlist ;
foreach_clause : | FOR EACH ROW ;
when_clause : | WHEN expr ;
trigger_cmd_list : trigger_cmd_list trigger_cmd SEMI
                 | trigger_cmd SEMI
                 ;
trigger_cmd : UPDATE orconf trnm tridxby SET setlist from where_opt scanpt
            | scanpt insert_cmd INTO trnm idlist_opt select upsert scanpt
            | DELETE FROM trnm tridxby where_opt scanpt
            | scanpt select scanpt
            ;
trnm : nm | nm DOT nm ;
tridxby : | INDEXED BY nm | NOT INDEXED ;
cmd : DROP TRIGGER ifexists fullname ;

/********************** ATTACH / DETACH / misc ***************************/
cmd : ATTACH database_kw_opt expr AS expr key_opt
    | DETACH database_kw_opt expr
    ;
key_opt : | KEY expr ;
database_kw_opt : DATABASE | ;
cmd : REINDEX
    | REINDEX nm dbnm
    ;
cmd : ANALYZE
    | ANALYZE nm dbnm
    ;

/********************** ALTER TABLE **************************************/
cmd : ALTER TABLE fullname RENAME TO nm
    | ALTER TABLE fullname ADD kwcolumn_opt columnname carglist
    | ALTER TABLE fullname RENAME kwcolumn_opt nm TO nm
    | ALTER TABLE fullname DROP kwcolumn_opt nm
    ;
kwcolumn_opt : | COLUMNKW ;

/********************** Virtual tables ***********************************/
cmd : createkw VIRTUAL TABLE ifnotexists nm dbnm USING nm
    | createkw VIRTUAL TABLE ifnotexists nm dbnm USING nm LP vtabarglist RP
    ;
vtabarglist : vtabarg | vtabarglist COMMA vtabarg ;
vtabarg : | vtabarg vtabargtoken ;
vtabargtoken : nm | number | LP RP ;

/********************** Common table expressions *************************/
with : | WITH wqlist | WITH RECURSIVE wqlist ;
wqas : AS | AS MATERIALIZED | AS NOT MATERIALIZED ;
wqitem : withnm eidlist_opt wqas LP select RP ;
withnm : nm ;
wqlist : wqitem | wqlist COMMA wqitem ;

/********************** Window functions *********************************/
windowdefn_list : windowdefn | windowdefn_list COMMA windowdefn ;
windowdefn : nm AS LP window RP ;
window : PARTITION BY nexprlist orderby_opt frame_opt
       | nm PARTITION BY nexprlist orderby_opt frame_opt
       | ORDER BY sortlist frame_opt
       | nm ORDER BY sortlist frame_opt
       | frame_opt
       | nm frame_opt
       ;
frame_opt : | range_or_rows frame_bound_s frame_exclude_opt
          | range_or_rows BETWEEN frame_bound_s AND frame_bound_e frame_exclude_opt
          ;
range_or_rows : RANGE | ROWS | GROUPS ;
frame_bound_s : frame_bound | UNBOUNDED PRECEDING ;
frame_bound_e : frame_bound | UNBOUNDED FOLLOWING ;
frame_bound : expr PRECEDING
            | CURRENT ROW
            | expr FOLLOWING
            ;
frame_exclude_opt : | EXCLUDE frame_exclude ;
frame_exclude : NO OTHERS | CURRENT ROW | GROUP | TIES ;
window_clause : WINDOW windowdefn_list ;
filter_over : filter_clause over_clause
            | over_clause
            | filter_clause
            ;
over_clause : OVER LP window RP | OVER nm ;
filter_clause : FILTER LP WHERE expr RP ;

%%
