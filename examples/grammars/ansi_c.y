/* ANSI C89 grammar in yacc form, following the well-known public-domain
 * formulation of the K&R2 appendix syntax. The single shift/reduce
 * conflict is the dangling else. Lexer-side typedef feedback is assumed:
 * TYPE_NAME is a distinct token.
 */
%token IDENTIFIER CONSTANT STRING_LITERAL SIZEOF
%token PTR_OP INC_OP DEC_OP LEFT_OP RIGHT_OP LE_OP GE_OP EQ_OP NE_OP
%token AND_OP OR_OP MUL_ASSIGN DIV_ASSIGN MOD_ASSIGN ADD_ASSIGN
%token SUB_ASSIGN LEFT_ASSIGN RIGHT_ASSIGN AND_ASSIGN
%token XOR_ASSIGN OR_ASSIGN TYPE_NAME

%token TYPEDEF EXTERN STATIC AUTO REGISTER
%token CHAR SHORT INT LONG SIGNED UNSIGNED FLOAT DOUBLE CONST VOLATILE VOID
%token STRUCT UNION ENUM ELLIPSIS

%token CASE DEFAULT IF ELSE SWITCH WHILE DO FOR GOTO CONTINUE BREAK RETURN

%start translation_unit
%expect 1
%%

primary_expression
	: IDENTIFIER
	| CONSTANT
	| STRING_LITERAL
	| '(' expression ')'
	;

postfix_expression
	: primary_expression
	| postfix_expression '[' expression ']'
	| postfix_expression '(' ')'
	| postfix_expression '(' argument_expression_list ')'
	| postfix_expression '.' IDENTIFIER
	| postfix_expression PTR_OP IDENTIFIER
	| postfix_expression INC_OP
	| postfix_expression DEC_OP
	;

argument_expression_list
	: assignment_expression
	| argument_expression_list ',' assignment_expression
	;

unary_expression
	: postfix_expression
	| INC_OP unary_expression
	| DEC_OP unary_expression
	| unary_operator cast_expression
	| SIZEOF unary_expression
	| SIZEOF '(' type_name ')'
	;

unary_operator
	: '&'
	| '*'
	| '+'
	| '-'
	| '~'
	| '!'
	;

cast_expression
	: unary_expression
	| '(' type_name ')' cast_expression
	;

multiplicative_expression
	: cast_expression
	| multiplicative_expression '*' cast_expression
	| multiplicative_expression '/' cast_expression
	| multiplicative_expression '%' cast_expression
	;

additive_expression
	: multiplicative_expression
	| additive_expression '+' multiplicative_expression
	| additive_expression '-' multiplicative_expression
	;

shift_expression
	: additive_expression
	| shift_expression LEFT_OP additive_expression
	| shift_expression RIGHT_OP additive_expression
	;

relational_expression
	: shift_expression
	| relational_expression '<' shift_expression
	| relational_expression '>' shift_expression
	| relational_expression LE_OP shift_expression
	| relational_expression GE_OP shift_expression
	;

equality_expression
	: relational_expression
	| equality_expression EQ_OP relational_expression
	| equality_expression NE_OP relational_expression
	;

and_expression
	: equality_expression
	| and_expression '&' equality_expression
	;

exclusive_or_expression
	: and_expression
	| exclusive_or_expression '^' and_expression
	;

inclusive_or_expression
	: exclusive_or_expression
	| inclusive_or_expression '|' exclusive_or_expression
	;

logical_and_expression
	: inclusive_or_expression
	| logical_and_expression AND_OP inclusive_or_expression
	;

logical_or_expression
	: logical_and_expression
	| logical_or_expression OR_OP logical_and_expression
	;

conditional_expression
	: logical_or_expression
	| logical_or_expression '?' expression ':' conditional_expression
	;

assignment_expression
	: conditional_expression
	| unary_expression assignment_operator assignment_expression
	;

assignment_operator
	: '='
	| MUL_ASSIGN
	| DIV_ASSIGN
	| MOD_ASSIGN
	| ADD_ASSIGN
	| SUB_ASSIGN
	| LEFT_ASSIGN
	| RIGHT_ASSIGN
	| AND_ASSIGN
	| XOR_ASSIGN
	| OR_ASSIGN
	;

expression
	: assignment_expression
	| expression ',' assignment_expression
	;

constant_expression
	: conditional_expression
	;

declaration
	: declaration_specifiers ';'
	| declaration_specifiers init_declarator_list ';'
	;

declaration_specifiers
	: storage_class_specifier
	| storage_class_specifier declaration_specifiers
	| type_specifier
	| type_specifier declaration_specifiers
	| type_qualifier
	| type_qualifier declaration_specifiers
	;

init_declarator_list
	: init_declarator
	| init_declarator_list ',' init_declarator
	;

init_declarator
	: declarator
	| declarator '=' initializer
	;

storage_class_specifier
	: TYPEDEF
	| EXTERN
	| STATIC
	| AUTO
	| REGISTER
	;

type_specifier
	: VOID
	| CHAR
	| SHORT
	| INT
	| LONG
	| FLOAT
	| DOUBLE
	| SIGNED
	| UNSIGNED
	| struct_or_union_specifier
	| enum_specifier
	| TYPE_NAME
	;

struct_or_union_specifier
	: struct_or_union IDENTIFIER '{' struct_declaration_list '}'
	| struct_or_union '{' struct_declaration_list '}'
	| struct_or_union IDENTIFIER
	;

struct_or_union
	: STRUCT
	| UNION
	;

struct_declaration_list
	: struct_declaration
	| struct_declaration_list struct_declaration
	;

struct_declaration
	: specifier_qualifier_list struct_declarator_list ';'
	;

specifier_qualifier_list
	: type_specifier specifier_qualifier_list
	| type_specifier
	| type_qualifier specifier_qualifier_list
	| type_qualifier
	;

struct_declarator_list
	: struct_declarator
	| struct_declarator_list ',' struct_declarator
	;

struct_declarator
	: declarator
	| ':' constant_expression
	| declarator ':' constant_expression
	;

enum_specifier
	: ENUM '{' enumerator_list '}'
	| ENUM IDENTIFIER '{' enumerator_list '}'
	| ENUM IDENTIFIER
	;

enumerator_list
	: enumerator
	| enumerator_list ',' enumerator
	;

enumerator
	: IDENTIFIER
	| IDENTIFIER '=' constant_expression
	;

type_qualifier
	: CONST
	| VOLATILE
	;

declarator
	: pointer direct_declarator
	| direct_declarator
	;

direct_declarator
	: IDENTIFIER
	| '(' declarator ')'
	| direct_declarator '[' constant_expression ']'
	| direct_declarator '[' ']'
	| direct_declarator '(' parameter_type_list ')'
	| direct_declarator '(' identifier_list ')'
	| direct_declarator '(' ')'
	;

pointer
	: '*'
	| '*' type_qualifier_list
	| '*' pointer
	| '*' type_qualifier_list pointer
	;

type_qualifier_list
	: type_qualifier
	| type_qualifier_list type_qualifier
	;

parameter_type_list
	: parameter_list
	| parameter_list ',' ELLIPSIS
	;

parameter_list
	: parameter_declaration
	| parameter_list ',' parameter_declaration
	;

parameter_declaration
	: declaration_specifiers declarator
	| declaration_specifiers abstract_declarator
	| declaration_specifiers
	;

identifier_list
	: IDENTIFIER
	| identifier_list ',' IDENTIFIER
	;

type_name
	: specifier_qualifier_list
	| specifier_qualifier_list abstract_declarator
	;

abstract_declarator
	: pointer
	| direct_abstract_declarator
	| pointer direct_abstract_declarator
	;

direct_abstract_declarator
	: '(' abstract_declarator ')'
	| '[' ']'
	| '[' constant_expression ']'
	| direct_abstract_declarator '[' ']'
	| direct_abstract_declarator '[' constant_expression ']'
	| '(' ')'
	| '(' parameter_type_list ')'
	| direct_abstract_declarator '(' ')'
	| direct_abstract_declarator '(' parameter_type_list ')'
	;

initializer
	: assignment_expression
	| '{' initializer_list '}'
	| '{' initializer_list ',' '}'
	;

initializer_list
	: initializer
	| initializer_list ',' initializer
	;

statement
	: labeled_statement
	| compound_statement
	| expression_statement
	| selection_statement
	| iteration_statement
	| jump_statement
	;

labeled_statement
	: IDENTIFIER ':' statement
	| CASE constant_expression ':' statement
	| DEFAULT ':' statement
	;

compound_statement
	: '{' '}'
	| '{' statement_list '}'
	| '{' declaration_list '}'
	| '{' declaration_list statement_list '}'
	;

declaration_list
	: declaration
	| declaration_list declaration
	;

statement_list
	: statement
	| statement_list statement
	;

expression_statement
	: ';'
	| expression ';'
	;

selection_statement
	: IF '(' expression ')' statement
	| IF '(' expression ')' statement ELSE statement
	| SWITCH '(' expression ')' statement
	;

iteration_statement
	: WHILE '(' expression ')' statement
	| DO statement WHILE '(' expression ')' ';'
	| FOR '(' expression_statement expression_statement ')' statement
	| FOR '(' expression_statement expression_statement expression ')' statement
	;

jump_statement
	: GOTO IDENTIFIER ';'
	| CONTINUE ';'
	| BREAK ';'
	| RETURN ';'
	| RETURN expression ';'
	;

translation_unit
	: external_declaration
	| translation_unit external_declaration
	;

external_declaration
	: function_definition
	| declaration
	;

function_definition
	: declaration_specifiers declarator declaration_list compound_statement
	| declaration_specifiers declarator compound_statement
	| declarator declaration_list compound_statement
	| declarator compound_statement
	;

%%
