//===- examples/quickstart.cpp - Five-minute tour --------------*- C++ -*-===//
//
// Part of lalrcex.
//
// Builds the paper's running example (Figure 1) with the programmatic
// GrammarBuilder API, constructs the LALR automaton, and prints a
// CUP-style counterexample report (paper Figure 11) for every conflict —
// including the "challenging conflict" of §3.1, whose counterexample an
// experienced language designer needed a while to find by hand.
//
//===----------------------------------------------------------------------===//

#include "counterexample/CounterexampleFinder.h"
#include "grammar/GrammarBuilder.h"

#include <cstdio>

using namespace lalrcex;

int main() {
  // The ambiguous statement grammar of paper Figure 1.
  GrammarBuilder B;
  B.tokens({"if", "then", "else", "arr", "digit"});
  B.rule("stmt", {"if", "expr", "then", "stmt", "else", "stmt"});
  B.rule("stmt", {"if", "expr", "then", "stmt"});
  B.rule("stmt", {"expr", "?", "stmt", "stmt"});
  B.rule("stmt", {"arr", "[", "expr", "]", ":=", "expr"});
  B.rule("expr", {"num"});
  B.rule("expr", {"expr", "+", "expr"});
  B.rule("num", {"digit"});
  B.rule("num", {"num", "digit"});
  B.start("stmt");

  std::string Err;
  std::optional<Grammar> G = B.build(&Err);
  if (!G) {
    std::fprintf(stderr, "grammar error: %s\n", Err.c_str());
    return 1;
  }

  // Grammar -> analyses -> LALR automaton -> ACTION/GOTO table.
  GrammarAnalysis Analysis(*G);
  Automaton M(*G, Analysis);
  ParseTable Table(M);

  std::printf("grammar: %u nonterminals, %u productions, %u states\n",
              G->numNonterminals() - 1, G->numProductions() - 1,
              M.numStates());
  std::vector<Conflict> Conflicts = Table.reportedConflicts();
  std::printf("conflicts: %zu\n\n", Conflicts.size());

  // Explain every conflict with a counterexample.
  CounterexampleFinder Finder(Table);
  for (const Conflict &C : Conflicts) {
    ConflictReport R = Finder.examine(C);
    std::printf("%s\n", Finder.render(R).c_str());
  }
  return 0;
}
