//===- examples/batch_analyze.cpp - Batch corpus driver --------*- C++ -*-===//
//
// Part of lalrcex.
//
// Analyzes a whole directory of grammar files (or the built-in corpus)
// with the persistent analysis cache: grammars are sharded across a
// worker pool, each worker running the full pipeline — automaton + table
// (restored via cache::AnalysisSession when warm), state-item graph, and
// conflict reports (FinderOptions::CachePath) — and rendering one report
// file per grammar. A second run against the same cache directory serves
// every artifact warm and must produce byte-identical report files; the
// CI cache-smoke job diffs the two output directories and compares the
// TOTAL_MS lines.
//
//   batch_analyze [options] <source>...
//     <source>          each positional argument is a grammar file, a
//                       directory of them, the whole built-in corpus
//                       ("corpus"), or one entry of it ("corpus:Java.2");
//                       the work lists concatenate
//     -cache <dir>      analysis cache directory (default: cache disabled)
//     -out <dir>        write <grammar>.txt report files here
//     -jobs <n>         grammar-level workers (default: hardware
//                       concurrency; conflicts within a grammar run
//                       serially so the pool is not oversubscribed)
//     -jobs-inner <n>   intra-conflict speculation workers per unifying
//                       search (default 1 here — grammar-level workers
//                       already fill the machine; reports are
//                       byte-identical at any setting)
//     -timeout <sec>    per-conflict unifying budget (default 5)
//     -cumulative <sec> per-grammar cumulative budget (default 120)
//     -steps <n>        deterministic per-conflict configuration budget
//     -canonical        use canonical LR(1) automatons
//     -metrics          collect the pipeline metrics registry per grammar:
//                       appends a metrics section to each report file,
//                       prints the merged aggregate after the summary, and
//                       attaches flattened metrics to the bench records
//     -edit-loop <n>    incremental replay mode: apply n seeded random
//                       single-production edits per grammar; after each,
//                       advance one persistent IncrementalSession (the
//                       automaton and state-item graph are patched in
//                       place when the structural delta permits) and run
//                       the finder against -cache, then run the whole
//                       pipeline cold without either; byte-compare the
//                       rendered reports AND the serialized automatons,
//                       and print per-edit wall time, a parse/automaton/
//                       search breakdown, state/row-patch and
//                       conflict-reuse counts. -jobs-inner is honored:
//                       per-slot read logs keep the remap layer's
//                       touched sets exact under intra-conflict
//                       parallelism. Unless
//                       -cumulative is given explicitly, the cumulative
//                       clock is turned off in this mode: a finite
//                       cumulative budget couples conflicts and disables
//                       the conflict-level reuse the loop measures
//                       (DESIGN.md §5i)
//     -edit-seed <s>    seed for -edit-loop's edit stream (default 1)
//     -edit-kinds <m>   edit menu for -edit-loop: "all" (default) or
//                       "terminal" (add/remove/rename-terminal only, for
//                       gating the terminal-delta path in isolation)
//     -cache-max-mb <n> after the run, garbage-collect the cache
//                       directory down to n MiB (oldest blobs first)
//
// Output: one summary line per grammar, a final "TOTAL_MS <ms>" line, and
// bench/out/BENCH_batch_analyze.json (schema 7) with per-grammar
// cold/warm wall times and cache hit/miss counts (plus metrics under
// -metrics; plus per-edit records with conflicts_reused /
// conflicts_recomputed / conflicts_remapped / states_reused /
// states_rebuilt / table_rows_reused / graph_rows_patched under
// -edit-loop). -edit-loop exits nonzero on any
// incremental-vs-cold byte mismatch — of the rendered reports or of the
// serialized patched automaton — making it a standalone differential
// harness.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "cache/AnalysisCache.h"
#include "corpus/Corpus.h"
#include "counterexample/CounterexampleFinder.h"
#include "counterexample/IncrementalSession.h"
#include "grammar/GrammarEdit.h"
#include "grammar/GrammarParser.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

using namespace lalrcex;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-cache <dir>] [-out <dir>] [-jobs <n>] "
               "[-jobs-inner <n>] "
               "[-timeout <sec>] [-cumulative <sec>] [-steps <n>] "
               "[-canonical] [-metrics] [-edit-loop <n> [-edit-seed <s>] "
               "[-edit-kinds all|terminal]] "
               "[-cache-max-mb <n>] <grammar-file|grammar-dir|corpus|"
               "corpus:<name>>...\n",
               Prog);
  return 2;
}

/// Strictly validated numeric flag value; reports and fails on input that
/// std::atoi would have silently read as 0.
bool parseFlagValue(const char *Flag, const char *Value, uint64_t Max,
                    uint64_t &Out) {
  std::optional<uint64_t> V = parseUnsigned(Value, Max);
  if (!V) {
    std::fprintf(stderr, "%s: '%s' is not a non-negative integer (max %llu)\n",
                 Flag, Value, (unsigned long long)Max);
    return false;
  }
  Out = *V;
  return true;
}

struct Job {
  std::string Name; // report/bench label
  std::string Text; // grammar text
};

struct JobResult {
  bool Ok = false;
  /// Failure stage, for the structured per-file failure record: "parse"
  /// (frontend diagnostics, counted under frontend.parse_failures) or
  /// "analysis" (an exception out of the pipeline).
  std::string FailStage;
  std::string Error;
  /// Parse failures only: the full caret-annotated diagnostic list.
  std::string DiagText;
  size_t Conflicts = 0;
  double WallMs = 0;
  bool Warm = false; // report set came from the cache
  long CacheHits = 0;
  long CacheMisses = 0;
  std::string Rendered; // concatenated reports (deterministic bytes)
  /// Per-grammar metrics (only under -metrics): the snapshot for the
  /// aggregate merge / bench records, and its rendered text for the
  /// report file.
  MetricsSnapshot Metrics;
  std::string MetricsText;
};

/// Safe file stem for a grammar name ("corpus:SQL.1" -> "corpus_SQL.1").
std::string fileStem(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (C == '/' || C == ':' || C == '\\')
      C = '_';
  return Out;
}

void countProbe(JobResult &R, const cache::CacheProbe &P) {
  if (P.Outcome == cache::CacheOutcome::Disabled)
    return;
  if (P.hit())
    ++R.CacheHits;
  else
    ++R.CacheMisses;
}

JobResult analyzeOne(const Job &J, const FinderOptions &BaseOpts,
                     AutomatonKind Kind, const std::string &CacheDir,
                     bool CollectMetrics) {
  JobResult R;
  Stopwatch Timer;

  // One registry per grammar job: workers never share a registry, so the
  // per-grammar numbers are exact; main merges the snapshots afterwards.
  MetricsRegistry Registry;
  MetricsRegistry *Metrics = CollectMetrics ? &Registry : nullptr;

  // A grammar that fails to parse is a structured per-file failure (the
  // batch carries on); the caret-annotated diagnostics ride along for the
  // summary and the failure is counted under frontend.parse_failures.
  GrammarParseResult Parsed = parseGrammar(J.Text);
  if (Metrics && Parsed.WarningCount > 0)
    Metrics->add(metric::FrontendParseWarnings, Parsed.WarningCount);
  if (!Parsed.ok()) {
    if (Metrics) {
      Metrics->add(metric::FrontendParseFailures);
      R.Metrics = Metrics->snapshot();
    }
    R.FailStage = "parse";
    const Diagnostic *First = Parsed.firstError();
    R.Error = "grammar error: " +
              (First ? First->header() : std::string("no rules"));
    R.DiagText = Parsed.renderDiagnostics(J.Text);
    R.WallMs = Timer.seconds() * 1000.0;
    return R;
  }
  std::optional<Grammar> G = std::move(Parsed.G);

  cache::AnalysisCache Cache(CacheDir);
  cache::AnalysisSession Session(std::move(*G), Kind,
                                 CacheDir.empty() ? nullptr : &Cache,
                                 Metrics);
  countProbe(R, Session.analysisProbe());

  FinderOptions Opts = BaseOpts;
  Opts.CachePath = CacheDir;
  Opts.Jobs = 1; // parallelism lives at the grammar level here
  Opts.Metrics = Metrics;
  CounterexampleFinder Finder(Session.table(), Opts);
  std::vector<ConflictReport> Reports = Finder.examineAll();

  const CacheActivity &Activity = Finder.cacheActivity();
  if (!CacheDir.empty()) {
    ++(Activity.GraphFromCache ? R.CacheHits : R.CacheMisses);
    ++(Activity.ReportsFromCache ? R.CacheHits : R.CacheMisses);
  }
  R.Warm = Activity.ReportsFromCache;

  std::string Out;
  Out += "== " + J.Name + ": " + std::to_string(Reports.size()) +
         " conflict(s) ==\n";
  for (const ConflictReport &Rep : Reports)
    Out += Finder.render(Rep) + "\n";
  R.Rendered = std::move(Out);
  R.Conflicts = Reports.size();
  R.Ok = true;
  R.WallMs = Timer.seconds() * 1000.0;
  if (Metrics) {
    R.Metrics = Metrics->snapshot();
    R.MetricsText = R.Metrics.renderText();
  }
  return R;
}

//===----------------------------------------------------------------------===//
// -edit-loop replay mode
//===----------------------------------------------------------------------===//

/// One full pipeline run for the edit loop, from a built Grammar to the
/// rendered report bytes. Grammar building stays outside the clock so the
/// per-edit wall time measures exactly what the incremental layer can
/// save; AutomatonMs/SearchMs split that wall time into the two phases
/// the layer attacks separately (automaton patch vs conflict reuse).
struct EditRunResult {
  double WallMs = 0;
  double AutomatonMs = 0; ///< analysis + automaton + table + graph
  double SearchMs = 0;    ///< conflict search + rendering
  size_t Conflicts = 0;
  size_t Reused = 0;
  size_t Remapped = 0;
  size_t Recomputed = 0;
  std::string Rendered;
  /// serializeAnalysis of the run's parse table: the automaton-level
  /// equivalence witness (the incremental leg's patched machine must be
  /// byte-identical to the cold leg's).
  std::string AnalysisBytes;
};

/// The cold reference leg: full rebuild, no cache of any kind.
EditRunResult runColdPipeline(Grammar G, const FinderOptions &BaseOpts,
                              AutomatonKind Kind) {
  EditRunResult R;
  Stopwatch Timer;
  cache::AnalysisSession Session(std::move(G), Kind, nullptr);
  R.AutomatonMs = Timer.seconds() * 1000.0;
  FinderOptions Opts = BaseOpts;
  Opts.CachePath.clear();
  Opts.Jobs = 1;
  Opts.Metrics = nullptr;
  CounterexampleFinder Finder(Session.table(), Opts);
  std::vector<ConflictReport> Reports = Finder.examineAll();
  std::string Out;
  for (const ConflictReport &Rep : Reports)
    Out += Finder.render(Rep) + "\n";
  R.Rendered = std::move(Out);
  R.Conflicts = Reports.size();
  R.Recomputed = Reports.size();
  R.WallMs = Timer.seconds() * 1000.0;
  R.SearchMs = R.WallMs - R.AutomatonMs;
  R.AnalysisBytes = cache::serializeAnalysis(Session.table());
  return R;
}

/// The incremental leg: advance the persistent session (patching the
/// automaton and graph in place when the delta permits) and search with
/// the conflict cache plus the session's remap handoff. \p Advance is
/// null on the baseline run (the session was just built cold).
EditRunResult runIncrPipeline(IncrementalSession &Sess,
                              const IncrementalSession::AdvanceStats *Advance,
                              double AdvanceMs, const FinderOptions &BaseOpts,
                              const std::string &CacheDir) {
  EditRunResult R;
  R.AutomatonMs = AdvanceMs;
  Stopwatch Timer;
  FinderOptions Opts = BaseOpts;
  Opts.CachePath = CacheDir;
  Opts.Jobs = 1;
  // Inner parallelism stays whatever -jobs-inner asked for: the parallel
  // unifying search commits in serial order and merges speculation
  // workers' graph-read logs deterministically, so conflict blobs carry
  // the same touched sets (and the legs the same bytes) at any width.
  Opts.Metrics = nullptr;
  Opts.Incremental = Advance ? Sess.handoff() : nullptr;
  CounterexampleFinder Finder(Sess.table(), Opts);
  std::vector<ConflictReport> Reports = Finder.examineAll();
  std::string Out;
  for (const ConflictReport &Rep : Reports)
    Out += Finder.render(Rep) + "\n";
  R.Rendered = std::move(Out);
  R.Conflicts = Reports.size();
  R.Reused = Finder.cacheActivity().ConflictsReused;
  R.Remapped = Finder.cacheActivity().ConflictsRemapped;
  R.Recomputed = Finder.cacheActivity().ConflictsRecomputed;
  R.SearchMs = Timer.seconds() * 1000.0;
  R.WallMs = R.AutomatonMs + R.SearchMs;
  R.AnalysisBytes = cache::serializeAnalysis(Sess.table());
  return R;
}

/// The replay loop: per grammar, a baseline run plus \p EditCount seeded
/// random edits over one persistent IncrementalSession; after each, the
/// incremental run (patched automaton + conflict cache against
/// \p CacheDir) is byte-compared against a cold run at both levels —
/// rendered reports and serialized automaton — a standing differential
/// harness for the whole dirty-state layer. \returns the mismatch count.
size_t runEditLoop(const std::vector<Job> &Work, const FinderOptions &Opts,
                   AutomatonKind Kind, const std::string &CacheDir,
                   unsigned EditCount, uint64_t Seed,
                   const std::vector<EditKind> &Kinds,
                   std::vector<bench::BenchRecord> &Records) {
  size_t Mismatches = 0;
  for (const Job &J : Work) {
    GrammarParseResult Parsed = parseGrammar(J.Text);
    if (!Parsed.ok()) {
      const Diagnostic *First = Parsed.firstError();
      std::printf("%-24s SKIPPED (parse): %s\n", J.Name.c_str(),
                  First ? First->header().c_str() : "no rules");
      continue;
    }
    EditableGrammar Model = EditableGrammar::fromGrammar(*Parsed.G);
    EditRng Rng(Seed);
    std::optional<IncrementalSession> Sess;
    for (unsigned K = 0; K <= EditCount; ++K) {
      std::string EditLabel = "baseline";
      Stopwatch ParseClock;
      if (K > 0) {
        std::optional<AppliedEdit> E = applyRandomEdit(Model, Rng, Kinds);
        if (!E) {
          std::printf("%-24s #%u: no applicable edit, stopping\n",
                      J.Name.c_str(), K);
          break;
        }
        EditLabel = E->Detail;
      }
      std::string BuildError;
      std::optional<Grammar> Edited = Model.build(&BuildError);
      if (!Edited) {
        // applyRandomEdit only commits buildable models and the baseline
        // is a round-trip of a parsed grammar, so this is a real bug.
        std::printf("%-24s #%u FAILED: edited grammar does not build: %s\n",
                    J.Name.c_str(), K, BuildError.c_str());
        ++Mismatches;
        break;
      }
      double ParseMs = ParseClock.seconds() * 1000.0;

      // Incremental leg: advance (patch-or-cold) the persistent session,
      // then search with the conflict cache and the remap handoff.
      Stopwatch AdvanceClock;
      const IncrementalSession::AdvanceStats *Advance = nullptr;
      if (K == 0)
        Sess.emplace(*Edited, Kind);
      else
        Advance = &Sess->advance(*Edited);
      double AdvanceMs = AdvanceClock.seconds() * 1000.0;
      EditRunResult Incr =
          runIncrPipeline(*Sess, Advance, AdvanceMs, Opts, CacheDir);
      EditRunResult Cold = runColdPipeline(std::move(*Edited), Opts, Kind);

      bool SameReports = Incr.Rendered == Cold.Rendered;
      bool SameAutomaton = Incr.AnalysisBytes == Cold.AnalysisBytes;
      if (!SameReports || !SameAutomaton)
        ++Mismatches;
      size_t Served = Incr.Reused + Incr.Remapped;
      std::printf("%-24s #%2u %-40s cold %8.1f ms  incr %8.1f ms  "
                  "reused %zu/%zu%s%s\n",
                  J.Name.c_str(), K, EditLabel.c_str(), Cold.WallMs,
                  Incr.WallMs, Served, Served + Incr.Recomputed,
                  SameReports ? "" : "  OUTPUT MISMATCH",
                  SameAutomaton ? "" : "  AUTOMATON MISMATCH");

      // Per-edit phase breakdown: where the wall time went, and what the
      // automaton patch reused. Grammar building ("parse") sits outside
      // both legs' clocks.
      std::string PatchNote;
      long StatesReused = -1, StatesRebuilt = -1;
      long TableRowsReused = -1, TableRowsRebuilt = -1;
      long GraphRowsPatched = -1, GraphRowsRebuilt = -1;
      if (Advance) {
        char Buf[160];
        if (Advance->Patched) {
          const AutomatonPatchStats &P = Advance->Patch;
          StatesReused = long(P.StatesReused);
          StatesRebuilt = long(P.StatesRebuilt) + long(P.StatesAdded);
          TableRowsReused = long(Advance->Table.RowsReused);
          TableRowsRebuilt = long(Advance->Table.RowsRebuilt);
          GraphRowsPatched = long(Advance->Graph.RowsPatched);
          GraphRowsRebuilt = long(Advance->Graph.RowsRebuilt);
          std::snprintf(Buf, sizeof(Buf),
                        "patched: %u spliced / %u reclosed / %u added, "
                        "table rows %u/%u, graph rows %u/%u",
                        P.StatesReused, P.StatesRebuilt, P.StatesAdded,
                        Advance->Table.RowsReused,
                        Advance->Table.RowsReused + Advance->Table.RowsRebuilt,
                        Advance->Graph.RowsPatched,
                        Advance->Graph.RowsPatched +
                            Advance->Graph.RowsRebuilt);
        } else {
          // Leave the states fields unset (omitted from the record): a
          // cold fallback has no patch economics to gate.
          std::snprintf(Buf, sizeof(Buf), "cold rebuild: %s",
                        Advance->ColdReason.c_str());
        }
        PatchNote = Buf;
      } else {
        PatchNote = "initial build";
      }
      std::printf("%-24s      parse %6.1f ms  automaton %6.1f ms (%s)  "
                  "search %6.1f ms  remapped %zu\n",
                  "", ParseMs, Incr.AutomatonMs, PatchNote.c_str(),
                  Incr.SearchMs, Incr.Remapped);

      bench::BenchRecord Rec;
      Rec.Name = "edit-loop/" + J.Name + "/" + std::to_string(K);
      Rec.Grammar = J.Name;
      Rec.Conflicts = Incr.Conflicts;
      Rec.Jobs = 1;
      // Both legs pin Jobs = 1; the inner width is whatever -jobs-inner
      // asked for (0 = auto resolves to 1 under a single outer worker).
      Rec.JobsInner = Opts.JobsInner == 0 ? 1 : Opts.JobsInner;
      Rec.WallMsCold = Cold.WallMs;
      Rec.WallMsWarm = Incr.WallMs;
      // The reuse gate counts reports the incremental leg did not have to
      // recompute; a structurally remapped report is exactly that, so it
      // folds into conflicts_reused (and is broken out in
      // conflicts_remapped for the state-reuse gate).
      Rec.ConflictsReused = long(Served);
      Rec.ConflictsRecomputed = long(Incr.Recomputed);
      Rec.ConflictsRemapped = long(Incr.Remapped);
      Rec.StatesReused = StatesReused;
      Rec.StatesRebuilt = StatesRebuilt;
      Rec.TableRowsReused = TableRowsReused;
      Rec.TableRowsRebuilt = TableRowsRebuilt;
      Rec.GraphRowsPatched = GraphRowsPatched;
      Rec.GraphRowsRebuilt = GraphRowsRebuilt;
      Rec.Edit = EditLabel;
      Records.push_back(Rec);
    }
  }
  return Mismatches;
}

/// The -cache-max-mb sweep (any mode): bounds the cache directory and
/// prints one machine-greppable summary line.
void gcSweep(const std::string &CacheDir, long long MaxMb) {
  if (MaxMb < 0 || CacheDir.empty())
    return;
  cache::AnalysisCache::GcStats S =
      cache::AnalysisCache(CacheDir).collectGarbage(uint64_t(MaxMb) * 1024 *
                                                    1024);
  std::printf("CACHE_GC scanned %llu file(s) / %llu byte(s), removed %llu "
              "file(s) / %llu byte(s)\n",
              (unsigned long long)S.ScannedFiles,
              (unsigned long long)S.ScannedBytes,
              (unsigned long long)S.RemovedFiles,
              (unsigned long long)S.RemovedBytes);
}

} // namespace

int main(int argc, char **argv) {
  FinderOptions Opts;
  std::vector<std::string> Sources;
  std::string CacheDir, OutDir;
  unsigned Jobs = 0;
  bool CollectMetrics = false;
  bool CumulativeSet = false;
  AutomatonKind Kind = AutomatonKind::Lalr1;
  unsigned EditLoop = 0;
  uint64_t EditSeed = 1;
  const std::vector<EditKind> *EditKinds = nullptr; // null = all kinds
  long long CacheMaxMb = -1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-cache") {
      if (++I == argc)
        return usage(argv[0]);
      CacheDir = argv[I];
    } else if (Arg == "-out") {
      if (++I == argc)
        return usage(argv[0]);
      OutDir = argv[I];
    } else if (Arg == "-jobs") {
      uint64_t V;
      if (++I == argc || !parseFlagValue("-jobs", argv[I], UINT32_MAX, V))
        return usage(argv[0]);
      Jobs = unsigned(V);
    } else if (Arg == "-jobs-inner") {
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-jobs-inner", argv[I], UINT32_MAX, V))
        return usage(argv[0]);
      Opts.JobsInner = unsigned(V);
    } else if (Arg == "-timeout") {
      if (++I == argc)
        return usage(argv[0]);
      Opts.ConflictTimeLimitSeconds = std::atof(argv[I]);
    } else if (Arg == "-cumulative") {
      if (++I == argc)
        return usage(argv[0]);
      Opts.CumulativeTimeLimitSeconds = std::atof(argv[I]);
      CumulativeSet = true;
    } else if (Arg == "-steps") {
      uint64_t V;
      if (++I == argc || !parseFlagValue("-steps", argv[I], SIZE_MAX, V))
        return usage(argv[0]);
      Opts.MaxConfigurations = size_t(V);
    } else if (Arg == "-canonical") {
      Kind = AutomatonKind::Canonical;
    } else if (Arg == "-metrics") {
      CollectMetrics = true;
    } else if (Arg == "-edit-loop") {
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-edit-loop", argv[I], UINT32_MAX, V))
        return usage(argv[0]);
      EditLoop = unsigned(V);
    } else if (Arg == "-edit-seed") {
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-edit-seed", argv[I], UINT64_MAX, V))
        return usage(argv[0]);
      EditSeed = V;
    } else if (Arg == "-edit-kinds") {
      if (++I == argc)
        return usage(argv[0]);
      std::string Menu = argv[I];
      if (Menu == "all") {
        EditKinds = nullptr;
      } else if (Menu == "terminal") {
        EditKinds = &terminalEditKinds();
      } else {
        std::fprintf(stderr, "-edit-kinds takes 'all' or 'terminal'\n");
        return usage(argv[0]);
      }
    } else if (Arg == "-cache-max-mb") {
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-cache-max-mb", argv[I], uint64_t(1) << 40, V))
        return usage(argv[0]);
      CacheMaxMb = (long long)V;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Sources.push_back(Arg);
    }
  }
  if (Sources.empty())
    return usage(argv[0]);

  // Collect the work list from every positional source ("corpus",
  // "corpus:<name>", a grammar file, or a directory of them), sorted by
  // name for deterministic output.
  std::vector<Job> Work;
  for (const std::string &Source : Sources) {
    if (Source == "corpus") {
      for (const CorpusEntry &E : corpus())
        Work.push_back(Job{E.Name, E.Text});
    } else if (Source.rfind("corpus:", 0) == 0) {
      // A single built-in grammar ("corpus:Java.2"): the edit loop and the
      // incremental-smoke gate target specific corpus entries this way.
      std::string Name = Source.substr(7);
      const CorpusEntry *E = findCorpusEntry(Name);
      if (!E) {
        std::fprintf(stderr, "no corpus grammar named '%s'\n", Name.c_str());
        return 1;
      }
      Work.push_back(Job{E->Name, E->Text});
    } else {
      std::error_code Ec;
      if (std::filesystem::is_directory(Source, Ec)) {
        for (const auto &Entry :
             std::filesystem::directory_iterator(Source, Ec)) {
          if (!Entry.is_regular_file())
            continue;
          std::string Ext = Entry.path().extension().string();
          if (Ext != ".y" && Ext != ".cfg" && Ext != ".grammar")
            continue;
          std::ifstream In(Entry.path());
          std::ostringstream Buf;
          Buf << In.rdbuf();
          Work.push_back(Job{Entry.path().stem().string(), Buf.str()});
        }
      } else {
        std::ifstream In(Source);
        if (!In) {
          std::fprintf(stderr, "cannot open '%s'\n", Source.c_str());
          return 1;
        }
        std::ostringstream Buf;
        Buf << In.rdbuf();
        Work.push_back(
            Job{std::filesystem::path(Source).stem().string(), Buf.str()});
      }
    }
  }
  if (Work.empty()) {
    std::fprintf(stderr, "no grammars found\n");
    return 1;
  }
  std::sort(Work.begin(), Work.end(),
            [](const Job &A, const Job &B) { return A.Name < B.Name; });

  if (!OutDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(OutDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "cannot create '%s'\n", OutDir.c_str());
      return 1;
    }
  }

  // Replay mode: serial by design (per-edit wall times are the product)
  // and self-checking (incremental vs cold byte diff).
  if (EditLoop > 0) {
    if (CacheDir.empty())
      std::fprintf(stderr, "note: -edit-loop without -cache measures cold "
                           "runs only (no conflict reuse)\n");
    // The edit loop measures conflict-level reuse, and a finite
    // *cumulative* budget disables that layer (it couples conflicts; see
    // DESIGN.md §5i), so unless the user explicitly asked for one, run
    // the loop with the cumulative clock off. Per-conflict -timeout and
    // -steps still bound every individual search.
    if (!CumulativeSet)
      Opts.CumulativeTimeLimitSeconds = 0;
    std::vector<bench::BenchRecord> Records;
    Stopwatch Total;
    size_t Mismatches =
        runEditLoop(Work, Opts, Kind, CacheDir, EditLoop, EditSeed,
                    EditKinds ? *EditKinds : allEditKinds(), Records);
    double TotalMs = Total.seconds() * 1000.0;
    bench::writeBenchRecords("batch_analyze", Records);
    gcSweep(CacheDir, CacheMaxMb);
    if (Mismatches > 0)
      std::printf("%zu incremental/cold MISMATCH(es)\n", Mismatches);
    std::printf("TOTAL_MS %.1f\n", TotalMs);
    return Mismatches == 0 ? 0 : 1;
  }

  // Shard grammars across the pool with an atomic dispenser (same shape
  // as CounterexampleFinder::examineAll's conflict-level pool).
  unsigned Workers = CounterexampleFinder::resolveJobs(Jobs);
  if (size_t(Workers) > Work.size())
    Workers = unsigned(Work.size());
  std::vector<JobResult> Results(Work.size());
  Stopwatch Total;
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Work.size();
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        Results[I] = analyzeOne(Work[I], Opts, Kind, CacheDir,
                                CollectMetrics);
      } catch (const std::exception &E) {
        Results[I].FailStage = "analysis";
        Results[I].Error = E.what();
      }
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Workers - 1);
  for (unsigned T = 1; T < Workers; ++T) {
    try {
      Pool.emplace_back(Worker);
    } catch (const std::system_error &) {
      break; // degrade to fewer workers
    }
  }
  Worker();
  for (std::thread &T : Pool)
    T.join();
  double TotalMs = Total.seconds() * 1000.0;

  // Report, write output files, and accumulate bench records.
  std::vector<bench::BenchRecord> Records;
  size_t TotalConflicts = 0, Failures = 0, ParseFailures = 0;
  long TotalHits = 0, TotalMisses = 0;
  MetricsSnapshot Aggregate;
  for (size_t I = 0; I != Work.size(); ++I) {
    const JobResult &R = Results[I];
    if (!R.Ok) {
      ++Failures;
      if (R.FailStage == "parse")
        ++ParseFailures;
      std::printf("%-24s FAILED (%s): %s\n", Work[I].Name.c_str(),
                  R.FailStage.c_str(), R.Error.c_str());
      if (!R.DiagText.empty())
        std::fputs(R.DiagText.c_str(), stderr);
      if (CollectMetrics)
        Aggregate.merge(R.Metrics);
      // Structured per-file failure record: the run's BENCH json names
      // every file that failed and at which stage.
      bench::BenchRecord Rec;
      Rec.Name = "batch/FAILED-" + R.FailStage + "/" + Work[I].Name;
      Rec.Grammar = Work[I].Name;
      Rec.WallMsCold = R.WallMs;
      if (CollectMetrics)
        Rec.Metrics = R.Metrics.flatten();
      Records.push_back(Rec);
      continue;
    }
    TotalConflicts += R.Conflicts;
    TotalHits += R.CacheHits;
    TotalMisses += R.CacheMisses;
    std::printf("%-24s %3zu conflict(s)  %8.1f ms  %s", Work[I].Name.c_str(),
                R.Conflicts, R.WallMs, R.Warm ? "warm" : "cold");
    if (!CacheDir.empty())
      std::printf("  (cache %ld hit / %ld miss)", R.CacheHits,
                  R.CacheMisses);
    std::printf("\n");

    if (CollectMetrics)
      Aggregate.merge(R.Metrics);

    if (!OutDir.empty()) {
      std::string Path = OutDir + "/" + fileStem(Work[I].Name) + ".txt";
      std::ofstream OS(Path, std::ios::trunc | std::ios::binary);
      OS << R.Rendered;
      // Metrics carry wall times, so this section is opt-in: the default
      // report bytes stay deterministic for the cache-smoke byte diff.
      if (CollectMetrics)
        OS << "-- metrics --\n" << R.MetricsText;
      if (!OS.flush()) {
        std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
        ++Failures;
      }
    }

    bench::BenchRecord Rec;
    Rec.Name = "batch/" + Work[I].Name;
    Rec.Grammar = Work[I].Name;
    Rec.Conflicts = R.Conflicts;
    Rec.Jobs = Workers;
    (R.Warm ? Rec.WallMsWarm : Rec.WallMsCold) = R.WallMs;
    if (!CacheDir.empty()) {
      Rec.CacheHits = R.CacheHits;
      Rec.CacheMisses = R.CacheMisses;
    }
    if (CollectMetrics)
      Rec.Metrics = R.Metrics.flatten();
    Records.push_back(Rec);
  }

  bench::BenchRecord TotalRec;
  TotalRec.Name = "batch/TOTAL";
  for (const std::string &Source : Sources) {
    if (!TotalRec.Grammar.empty())
      TotalRec.Grammar += "+";
    TotalRec.Grammar += Source;
  }
  TotalRec.Conflicts = TotalConflicts;
  TotalRec.Jobs = Workers;
  // The whole run counts as warm only if every report set was served from
  // the cache.
  bool AllWarm = !CacheDir.empty() &&
                 std::all_of(Results.begin(), Results.end(),
                             [](const JobResult &R) { return R.Warm; });
  (AllWarm ? TotalRec.WallMsWarm : TotalRec.WallMsCold) = TotalMs;
  if (!CacheDir.empty()) {
    TotalRec.CacheHits = TotalHits;
    TotalRec.CacheMisses = TotalMisses;
  }
  if (CollectMetrics)
    TotalRec.Metrics = Aggregate.flatten();
  Records.push_back(TotalRec);
  bench::writeBenchRecords("batch_analyze", Records);

  std::printf("analyzed %zu grammar(s), %zu conflict(s), %u worker(s)",
              Work.size(), TotalConflicts, Workers);
  if (Failures > 0)
    std::printf(", %zu failure(s) (%zu parse)", Failures, ParseFailures);
  if (!CacheDir.empty())
    std::printf(", cache %ld hit / %ld miss", TotalHits, TotalMisses);
  if (CollectMetrics)
    std::printf("\n-- aggregate metrics --\n%s",
                Aggregate.renderText().c_str());
  std::printf("\nTOTAL_MS %.1f\n", TotalMs);
  gcSweep(CacheDir, CacheMaxMb);
  return Failures == 0 ? 0 : 1;
}
