//===- examples/diff_conflicts.cpp - Differential conflict harness -------===//
//
// Part of lalrcex.
//
// Cross-checks conflict reporting on real grammar files, three ways:
//
//   1. the pooled LALR construction (the default) against the baseline
//      IndexSet fixpoints (PooledSets = false): the two must agree on
//      every reported conflict — state, token, kind — not just counts;
//   2. the reported counts against the grammar's own %expect/%expect-rr
//      declarations, when declared;
//   3. optionally (-canonical) the canonical LR(1) machine: its counts
//      are informational (LALR merging can only add conflicts), but a
//      conflict-free LALR table with a conflicted canonical table is a
//      construction bug and fails hard.
//
// Any divergence is reported as a structured failure. With -torture the
// inputs are expected to be garbage: the harness only requires that the
// frontend refuses them with structured diagnostics instead of crashing,
// and files that happen to parse still go through the differential check.
//
//   diff_conflicts [-torture] [-canonical] [file | directory]...
//
// Exit codes: 0 all grammars agree; 1 divergence; 2 usage;
//             3 parse failure outside -torture mode.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"
#include "lr/ParseTable.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace lalrcex;

namespace {

struct Counts {
  unsigned Sr = 0, Rr = 0;
};

Counts countReported(const ParseTable &T) {
  Counts C;
  for (const Conflict &Conf : T.reportedConflicts())
    (Conf.K == Conflict::ShiftReduce ? C.Sr : C.Rr) += 1;
  return C;
}

/// A conflict's identity for cross-construction comparison.
std::string conflictKey(const Conflict &C) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "state%u/tok%d/%s/red%u/oth%u", C.State,
                C.Token.id(), C.K == Conflict::ShiftReduce ? "sr" : "rr",
                C.ReduceProd, C.K == Conflict::ReduceReduce ? C.OtherProd : 0);
  return Buf;
}

std::vector<std::string> reportedKeys(const ParseTable &T) {
  std::vector<std::string> Keys;
  for (const Conflict &C : T.reportedConflicts())
    Keys.push_back(conflictKey(C));
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

} // namespace

int main(int argc, char **argv) {
  bool Torture = false, Canonical = false;
  std::vector<std::filesystem::path> Files;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-torture") {
      Torture = true;
    } else if (Arg == "-canonical") {
      Canonical = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: diff_conflicts [-torture] [-canonical] "
                   "[file | directory]...\n");
      return 2;
    } else {
      std::filesystem::path P(Arg);
      std::error_code Ec;
      if (std::filesystem::is_directory(P, Ec)) {
        std::vector<std::filesystem::path> Found;
        for (const auto &E : std::filesystem::directory_iterator(P, Ec))
          if (E.is_regular_file() && E.path().extension() == ".y")
            Found.push_back(E.path());
        std::sort(Found.begin(), Found.end());
        Files.insert(Files.end(), Found.begin(), Found.end());
      } else {
        Files.push_back(P);
      }
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "diff_conflicts: no grammar files given\n");
    return 2;
  }

  unsigned Divergences = 0, ParseFailures = 0;
  for (const std::filesystem::path &File : Files) {
    std::string Name = File.filename().string();
    std::ifstream In(File, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "%s: cannot read\n", Name.c_str());
      ++ParseFailures;
      continue;
    }
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());

    GrammarParseResult Parsed = parseGrammar(Text);
    if (!Parsed.ok()) {
      if (Torture) {
        // Expected: the contract is a structured refusal, not a parse.
        const Diagnostic *First = Parsed.firstError();
        std::printf("%-28s rejected with %zu error(s): %s\n", Name.c_str(),
                    Parsed.ErrorCount,
                    First ? First->header().c_str() : "(no diagnostic?)");
        if (!First) {
          std::fprintf(stderr, "%s: DIVERGENCE: failed parse carries no "
                               "error diagnostic\n",
                       Name.c_str());
          ++Divergences;
        }
      } else {
        std::fprintf(stderr, "%s: does not parse:\n%s", Name.c_str(),
                     Parsed.renderDiagnostics(Text).c_str());
        ++ParseFailures;
      }
      continue;
    }

    const Grammar &G = *Parsed.G;
    GrammarAnalysis A(G);

    AutomatonOptions Pooled;
    Automaton MPooled(G, A, Pooled);
    ParseTable TPooled(MPooled);
    Counts CP = countReported(TPooled);

    AutomatonOptions Baseline;
    Baseline.PooledSets = false;
    Automaton MBase(G, A, Baseline);
    ParseTable TBase(MBase);

    // 1. Pooled vs baseline: identical conflict sets, not just counts.
    if (reportedKeys(TPooled) != reportedKeys(TBase)) {
      Counts CB = countReported(TBase);
      std::fprintf(stderr,
                   "%s: DIVERGENCE: pooled construction reports %u/%u "
                   "(s/r, r/r) but baseline reports %u/%u or differs in "
                   "conflict identity\n",
                   Name.c_str(), CP.Sr, CP.Rr, CB.Sr, CB.Rr);
      ++Divergences;
    }

    // 2. Declared expectations, when the grammar carries them.
    std::string Mismatch = TPooled.checkExpectations();
    if (!Mismatch.empty()) {
      std::fprintf(stderr, "%s: DIVERGENCE: %s\n", Name.c_str(),
                   Mismatch.c_str());
      ++Divergences;
    }

    std::printf("%-28s %4u prods %5u states  %u s/r %u r/r", Name.c_str(),
                G.numProductions(), MPooled.numStates(), CP.Sr, CP.Rr);
    if (G.expectedShiftReduce() >= 0 || G.expectedReduceReduce() >= 0)
      std::printf("  (declared %d/%d)", G.expectedShiftReduce(),
                  G.expectedReduceReduce());

    // 3. Canonical LR(1), informational plus the subset sanity check.
    if (Canonical) {
      AutomatonOptions CanonOpts;
      CanonOpts.Kind = AutomatonKind::Canonical;
      Automaton MCanon(G, A, CanonOpts);
      ParseTable TCanon(MCanon);
      Counts CC = countReported(TCanon);
      std::printf("  [canonical: %u states, %u s/r %u r/r]",
                  MCanon.numStates(), CC.Sr, CC.Rr);
      if (CP.Sr + CP.Rr == 0 && CC.Sr + CC.Rr != 0) {
        std::printf("\n");
        std::fprintf(stderr,
                     "%s: DIVERGENCE: LALR table is conflict-free but "
                     "canonical LR(1) reports %u/%u\n",
                     Name.c_str(), CC.Sr, CC.Rr);
        ++Divergences;
      }
    }
    std::printf("\n");
  }

  if (Divergences)
    std::fprintf(stderr, "diff_conflicts: %u divergence(s)\n", Divergences);
  if (ParseFailures)
    std::fprintf(stderr, "diff_conflicts: %u parse failure(s)\n",
                 ParseFailures);
  if (Divergences)
    return 1;
  return ParseFailures ? 3 : 0;
}
