//===- examples/ambiguity_detective.cpp - Detector comparison --*- C++ -*-===//
//
// Part of lalrcex.
//
// Answers "is this grammar ambiguous, and what's the witness?" three ways
// and compares them (the paper's related-work landscape in one program):
//
//   1. the conflict-driven counterexample engine (this library's core):
//      per-conflict unifying counterexamples at parser-generation time;
//   2. a CFGAnalyzer-style bounded SAT detector (baseline, §7.3);
//   3. an AMBER-style exhaustive enumerator (baseline, §8).
//
//   ambiguity_detective [corpus:NAME | grammar-file] [max-length]
//
//===----------------------------------------------------------------------===//

#include "baseline/AmberDetector.h"
#include "baseline/CfgAnalyzerDetector.h"
#include "corpus/Corpus.h"
#include "counterexample/CounterexampleFinder.h"
#include "earley/DerivationCounter.h"
#include "grammar/GrammarParser.h"
#include "support/Stopwatch.h"
#include "support/StrUtil.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

using namespace lalrcex;

int main(int argc, char **argv) {
  std::string Source = argc > 1 ? argv[1] : "corpus:figure1";
  unsigned MaxLength = 12;
  if (argc > 2) {
    std::optional<uint64_t> V = parseUnsigned(argv[2], UINT32_MAX);
    if (!V) {
      std::fprintf(stderr,
                   "max-length '%s' is not a non-negative integer\n",
                   argv[2]);
      return 2;
    }
    MaxLength = unsigned(*V);
  }

  std::string Text;
  if (Source.rfind("corpus:", 0) == 0) {
    const CorpusEntry *E = findCorpusEntry(Source.substr(7));
    if (!E) {
      std::fprintf(stderr, "no corpus grammar named '%s'\n",
                   Source.substr(7).c_str());
      return 1;
    }
    Text = E->Text;
  } else {
    std::ifstream In(Source);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  GrammarParseResult Parsed = parseGrammar(Text);
  if (!Parsed.Diags.empty())
    std::fputs(Parsed.renderDiagnostics(Text).c_str(), stderr);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "grammar error: %zu error(s)\n", Parsed.ErrorCount);
    return 3;
  }
  std::optional<Grammar> G = std::move(Parsed.G);
  GrammarAnalysis A(*G);
  DerivationCounter Validator(*G, A);

  // 1. Conflict-driven counterexamples (needs no length bound).
  {
    Stopwatch W;
    Automaton M(*G, A);
    ParseTable T(M);
    CounterexampleFinder Finder(T);
    unsigned Unifying = 0;
    std::string First;
    for (const Conflict &C : T.reportedConflicts()) {
      ConflictReport R = Finder.examine(C);
      if (R.Status == CounterexampleStatus::UnifyingFound) {
        if (Unifying == 0)
          First = R.Example->exampleString1(*G) + "   (nonterminal " +
                  G->name(R.Example->Root) + ")";
        ++Unifying;
      }
    }
    std::printf("[counterexample engine]  %.3fs  %u/%zu conflicts proved "
                "ambiguous\n",
                W.seconds(), Unifying, T.reportedConflicts().size());
    if (!First.empty())
      std::printf("  first unifying counterexample: %s\n", First.c_str());
  }

  // 2. CFGAnalyzer-style bounded SAT search for an ambiguous word.
  {
    Stopwatch W;
    CfgAnalyzerDetector Det(*G, A);
    DetectionResult R = Det.run(MaxLength, Deadline::afterSeconds(30));
    std::printf("[SAT bounded detector ]  %.3fs  ", W.seconds());
    if (R.St == DetectionResult::Ambiguous) {
      std::printf("ambiguous word of length %u: %s\n", R.BoundReached,
                  G->symbolsString(*R.Witness).c_str());
      if (Validator.countDerivations(G->startSymbol(), *R.Witness) < 2)
        std::printf("  WARNING: witness failed independent validation\n");
    } else if (R.St == DetectionResult::NoWitnessInBound) {
      std::printf("no ambiguous word up to length %u\n", R.BoundReached);
    } else {
      std::printf("resource limit reached at length %u\n", R.BoundReached);
    }
  }

  // 3. AMBER-style exhaustive enumeration.
  {
    Stopwatch W;
    AmberDetector Det(*G, A);
    DetectionResult R =
        Det.run(MaxLength, Deadline::afterSeconds(30), 20'000'000);
    std::printf("[exhaustive enumerator]  %.3fs  ", W.seconds());
    if (R.St == DetectionResult::Ambiguous) {
      std::printf("ambiguous word of length %u after %llu expansions: %s\n",
                  unsigned(R.Witness->size()),
                  (unsigned long long)R.Work,
                  G->symbolsString(*R.Witness).c_str());
    } else if (R.St == DetectionResult::NoWitnessInBound) {
      std::printf("no ambiguous word up to length %u (%llu expansions)\n",
                  R.BoundReached, (unsigned long long)R.Work);
    } else {
      std::printf("gave up after %llu expansions\n",
                  (unsigned long long)R.Work);
    }
  }
  return 0;
}
