//===- examples/grammar_debugger.cpp - CLI conflict explainer --*- C++ -*-===//
//
// Part of lalrcex.
//
// The tool the paper describes, as a command line program: read a
// yacc-like grammar, report every unresolved conflict with a unifying or
// nonunifying counterexample.
//
//   grammar_debugger [options] <grammar-file | corpus:NAME>
//     -extendedsearch     full product-parser search (paper §6)
//     -nonunifying        skip the unifying search entirely
//     -timeout <seconds>  per-conflict unifying budget (default 5)
//     -cumulative <sec>   cumulative budget across all conflicts (default
//                         120; 0 = unlimited)
//     -steps <n>          deterministic per-conflict configuration budget
//     -memory-mb <n>      accounted memory budget per unifying search
//     -jobs <n>           worker threads for conflict examination
//                         (default: hardware concurrency; 1 = serial)
//     -jobs-inner <n>     intra-conflict speculation workers per unifying
//                         search (default: auto — the -jobs budget split
//                         across the conflict workers; 1 = serial search;
//                         reports are byte-identical at any setting)
//     -lss-stats          print per-conflict lookahead-sensitive search
//                         stats (pool occupancy, union-cache hit rate,
//                         dominance-check counts)
//     -metrics            print the pipeline metrics registry (per-phase
//                         wall times, search-effort counters, guard trips)
//                         after the run
//     -trace-out <file>   write phase trace spans as Chrome trace_event
//                         JSON (load in chrome://tracing or Perfetto)
//     -canonical          use a canonical LR(1) automaton (no LALR merging)
//     -dump               print the automaton states (Figure 2 style)
//     -print              echo the normalized grammar and exit
//     -list               list built-in corpus grammar names and exit
//
// Exit codes (distinct so CI and the differential harness can tell the
// failure modes apart):
//   0  success, no reported conflicts
//   1  success, grammar has reported conflicts
//   2  usage error
//   3  input/parse failure (file unreadable, or diagnostics with errors)
//   4  analysis/budget failure (some report degraded by a tripped budget
//      or an internal search failure)
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "counterexample/CounterexampleFinder.h"
#include "grammar/GrammarParser.h"
#include "grammar/GrammarPrinter.h"
#include "lr/AutomatonPrinter.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/Trace.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace lalrcex;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-extendedsearch] [-nonunifying] "
               "[-timeout <sec>] [-cumulative <sec>] [-steps <n>] "
               "[-memory-mb <n>] [-jobs <n>] [-jobs-inner <n>] "
               "[-lss-stats] [-metrics] "
               "[-trace-out <file>] [-canonical] "
               "[-dump] [-print] [-list] <grammar-file | corpus:NAME>\n",
               Prog);
  return 2;
}

/// Parses the value of numeric flag \p Flag with strict validation; prints
/// a usage error and exits via the caller's `return` on garbage like
/// "-jobs banana" that std::atoi would silently turn into 0.
static bool parseFlagValue(const char *Flag, const char *Value, uint64_t Max,
                           uint64_t &Out) {
  std::optional<uint64_t> V = parseUnsigned(Value, Max);
  if (!V) {
    std::fprintf(stderr, "%s: '%s' is not a non-negative integer (max %llu)\n",
                 Flag, Value, (unsigned long long)Max);
    return false;
  }
  Out = *V;
  return true;
}

int main(int argc, char **argv) {
  FinderOptions Opts;
  std::string Source;
  std::string TracePath;
  bool Dump = false, Print = false, PrintMetrics = false;
  AutomatonKind Kind = AutomatonKind::Lalr1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-extendedsearch") {
      Opts.ExtendedSearch = true;
    } else if (Arg == "-nonunifying") {
      Opts.UnifyingEnabled = false;
    } else if (Arg == "-timeout") {
      if (++I == argc)
        return usage(argv[0]);
      Opts.ConflictTimeLimitSeconds = std::atof(argv[I]);
    } else if (Arg == "-cumulative") {
      if (++I == argc)
        return usage(argv[0]);
      Opts.CumulativeTimeLimitSeconds = std::atof(argv[I]);
    } else if (Arg == "-steps") {
      uint64_t V;
      if (++I == argc || !parseFlagValue("-steps", argv[I], SIZE_MAX, V))
        return usage(argv[0]);
      Opts.MaxConfigurations = size_t(V);
    } else if (Arg == "-memory-mb") {
      // Cap at SIZE_MAX >> 20 so the megabyte-to-byte shift cannot wrap.
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-memory-mb", argv[I], SIZE_MAX >> 20, V))
        return usage(argv[0]);
      Opts.MemoryLimitBytes = size_t(V) << 20;
    } else if (Arg == "-jobs") {
      uint64_t V;
      if (++I == argc || !parseFlagValue("-jobs", argv[I], UINT32_MAX, V))
        return usage(argv[0]);
      Opts.Jobs = unsigned(V);
    } else if (Arg == "-jobs-inner") {
      uint64_t V;
      if (++I == argc ||
          !parseFlagValue("-jobs-inner", argv[I], UINT32_MAX, V))
        return usage(argv[0]);
      Opts.JobsInner = unsigned(V);
    } else if (Arg == "-lss-stats") {
      Opts.CollectLssStats = true;
    } else if (Arg == "-metrics") {
      PrintMetrics = true;
    } else if (Arg == "-trace-out") {
      if (++I == argc)
        return usage(argv[0]);
      TracePath = argv[I];
    } else if (Arg == "-dump") {
      Dump = true;
    } else if (Arg == "-print") {
      Print = true;
    } else if (Arg == "-canonical") {
      Kind = AutomatonKind::Canonical;
    } else if (Arg == "-list") {
      for (const CorpusEntry &E : corpus())
        std::printf("%-24s (%s)\n", E.Name.c_str(), E.Category.c_str());
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Source = Arg;
    }
  }
  if (Source.empty())
    return usage(argv[0]);

  // Load the grammar text.
  std::string Text;
  if (Source.rfind("corpus:", 0) == 0) {
    const CorpusEntry *E = findCorpusEntry(Source.substr(7));
    if (!E) {
      std::fprintf(stderr, "no corpus grammar named '%s' (try -list)\n",
                   Source.substr(7).c_str());
      return 1;
    }
    Text = E->Text;
  } else {
    std::ifstream In(Source);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Source.c_str());
      return 3;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  GrammarParseResult Parsed = parseGrammar(Text);
  // Warnings (ignored %glr-parser, duplicate %token, ...) always print;
  // with errors the full caret-annotated list goes to stderr and the
  // distinct parse-failure exit code tells tooling what happened.
  if (!Parsed.Diags.empty())
    std::fputs(Parsed.renderDiagnostics(Text).c_str(), stderr);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "%s: %zu error(s), %zu warning(s)\n", Source.c_str(),
                 Parsed.ErrorCount, Parsed.WarningCount);
    return 3;
  }
  std::optional<Grammar> G = std::move(Parsed.G);

  if (Print) {
    std::fputs(printGrammarText(*G).c_str(), stdout);
    return 0;
  }

  // Observability sinks: only materialized when requested, so the default
  // run keeps every instrumentation site on its null fast path.
  MetricsRegistry Metrics;
  TraceRecorder Trace;
  if (PrintMetrics)
    Opts.Metrics = &Metrics;
  if (!TracePath.empty())
    Opts.Trace = &Trace;

  GrammarAnalysis Analysis(*G, Opts.Metrics, Opts.Trace);
  AutomatonOptions AutoOpts;
  AutoOpts.Kind = Kind;
  AutoOpts.Metrics = Opts.Metrics;
  AutoOpts.Trace = Opts.Trace;
  Automaton M(*G, Analysis, AutoOpts);
  ParseTable Table(M);

  if (Dump) {
    std::fputs(dumpAutomaton(M, &Table).c_str(), stdout);
    return 0;
  }

  std::vector<Conflict> Conflicts = Table.reportedConflicts();
  unsigned Resolved = 0;
  for (const Conflict &C : Table.conflicts())
    if (!C.reported())
      ++Resolved;
  std::printf("%u nonterminals, %u productions, %u states\n",
              G->numNonterminals() - 1, G->numProductions() - 1,
              M.numStates());
  std::printf("%zu conflicts (%u more resolved by precedence)\n\n",
              Conflicts.size(), Resolved);
  std::string Expectation = Table.checkExpectations();
  if (!Expectation.empty())
    std::printf("warning: %s\n", Expectation.c_str());

  CounterexampleFinder Finder(Table, Opts);
  std::vector<ConflictReport> Reports = Finder.examineAll();
  unsigned Degraded = 0;
  for (const ConflictReport &R : Reports) {
    if (R.Failure)
      ++Degraded;
    std::printf("%s  (%.3fs, %zu configurations)\n",
                Finder.render(R).c_str(), R.Seconds, R.Configurations);
    if (R.Failure)
      std::printf("  [degraded: %s in %s%s%s]\n",
                  FailureReason::kindName(R.Failure->K),
                  R.Failure->Stage.c_str(),
                  R.Failure->Detail.empty() ? "" : ": ",
                  R.Failure->Detail.c_str());
    if (R.Lss) {
      const LssStats &S = *R.Lss;
      double HitRate = S.UnionCalls
                           ? 100.0 * double(S.UnionCacheHits) /
                                 double(S.UnionCalls)
                           : 0.0;
      std::printf("  [lss: %zu expanded, %zu enqueued, %zu pruned by "
                  "dominance (%zu subset checks); pool %zu wide sets / "
                  "%zu arena bytes; union cache %zu/%zu hits (%.1f%%)]\n",
                  S.Expanded, S.Enqueued, S.DominancePruned, S.SubsetChecks,
                  S.PoolWideSets, S.PoolArenaBytes, S.UnionCacheHits,
                  S.UnionCalls, HitRate);
    }
    std::printf("\n");
  }
  unsigned Outer = CounterexampleFinder::resolveJobs(Opts.Jobs);
  if (size_t(Outer) > Reports.size() && !Reports.empty())
    Outer = unsigned(Reports.size()); // examineAll clamps the same way
  std::printf("examined %zu conflicts with %u worker thread(s) "
              "(x%u intra-conflict); "
              "%zu cumulative configurations charged\n",
              Reports.size(),
              CounterexampleFinder::resolveJobs(Opts.Jobs),
              CounterexampleFinder::resolveInnerJobs(Opts.JobsInner,
                                                     Opts.Jobs, Outer),
              Finder.cumulativeGuard().steps());

  if (PrintMetrics) {
    std::printf("\n-- metrics --\n%s",
                Metrics.snapshot().renderText().c_str());
  }
  if (!TracePath.empty()) {
    if (!Trace.writeChromeJson(TracePath)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", TracePath.c_str());
      return 3;
    }
    std::fprintf(stderr, "wrote %zu trace span(s) to %s (%llu dropped)\n",
                 Trace.events().size(), TracePath.c_str(),
                 (unsigned long long)Trace.dropped());
  }
  if (Degraded > 0) {
    std::fprintf(stderr,
                 "%u report(s) degraded by budget/analysis failure\n",
                 Degraded);
    return 4;
  }
  return Conflicts.empty() ? 0 : 1;
}
