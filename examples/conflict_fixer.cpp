//===- examples/conflict_fixer.cpp - Auto-apply precedence fixes *- C++ -*===//
//
// Part of lalrcex.
//
// Demonstrates closing the loop the paper opens: counterexamples tell the
// designer *why* a conflict exists; for the classic binary-operator shape
// the fix is mechanical. This tool finds operator-shaped conflicts,
// synthesizes %left declarations (one level per operator, in appearance
// order — a guess the designer should review!), reparses the patched
// grammar, and shows the before/after conflict counts.
//
//   conflict_fixer [corpus:NAME | grammar-file]
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "counterexample/CounterexampleFinder.h"
#include "grammar/GrammarParser.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

using namespace lalrcex;

namespace {

/// Collects the operator terminals of binary-operator-shaped conflicts:
/// reduce item "e -> e .. OP1 .. e ." under OP2 with a shift item wanting
/// OP2.
std::vector<Symbol> operatorTerminals(const Grammar &G,
                                      const std::vector<Conflict> &Cs) {
  std::vector<Symbol> Ops;
  auto note = [&Ops](Symbol S) {
    if (std::find(Ops.begin(), Ops.end(), S) == Ops.end())
      Ops.push_back(S);
  };
  for (const Conflict &C : Cs) {
    if (C.K != Conflict::ShiftReduce)
      continue;
    const Production &Reduce = G.production(C.ReduceProd);
    const Production &Shift = G.production(C.ShiftItm.Prod);
    auto opOf = [&G](const Production &P, Symbol *Out) {
      if (P.Rhs.size() < 3 || P.Rhs.front() != P.Lhs ||
          P.Rhs.back() != P.Lhs)
        return false;
      for (size_t I = 1; I + 1 < P.Rhs.size(); ++I) {
        if (G.isTerminal(P.Rhs[I])) {
          *Out = P.Rhs[I];
          return true;
        }
      }
      return false;
    };
    Symbol ReduceOp, ShiftOp;
    if (opOf(Reduce, &ReduceOp) && opOf(Shift, &ShiftOp) &&
        C.ShiftItm.afterDot(G) == C.Token) {
      note(ReduceOp);
      note(C.Token);
    }
  }
  return Ops;
}

} // namespace

int main(int argc, char **argv) {
  std::string Source = argc > 1 ? argv[1] : "corpus:stackexc01";
  std::string Text;
  if (Source.rfind("corpus:", 0) == 0) {
    const CorpusEntry *E = findCorpusEntry(Source.substr(7));
    if (!E) {
      std::fprintf(stderr, "no corpus grammar named '%s'\n",
                   Source.substr(7).c_str());
      return 1;
    }
    Text = E->Text;
  } else {
    std::ifstream In(Source);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  GrammarParseResult Parsed = parseGrammar(Text);
  if (!Parsed.Diags.empty())
    std::fputs(Parsed.renderDiagnostics(Text).c_str(), stderr);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "grammar error: %zu error(s)\n", Parsed.ErrorCount);
    return 3;
  }
  std::optional<Grammar> G = std::move(Parsed.G);
  GrammarAnalysis A(*G);
  Automaton M(*G, A);
  ParseTable T(M);
  std::vector<Conflict> Before = T.reportedConflicts();
  std::printf("before: %zu reported conflicts\n", Before.size());

  std::vector<Symbol> Ops = operatorTerminals(*G, Before);
  if (Ops.empty()) {
    std::printf("no binary-operator-shaped conflicts found; nothing this "
                "tool can fix mechanically\n");
    return Before.empty() ? 0 : 1;
  }

  // Synthesize one %left level per operator, in appearance order. The
  // ORDER is a guess (earlier operators bind looser); a real designer
  // should review it.
  std::string Patch;
  for (Symbol Op : Ops)
    Patch += "%left " + G->name(Op) + "\n";
  std::printf("inserting (review the relative order!):\n%s",
              Patch.c_str());
  std::string Fixed = Patch + Text;

  GrammarParseResult Patched = parseGrammar(Fixed);
  if (!Patched.ok()) {
    std::fprintf(stderr, "patched grammar fails to parse:\n%s",
                 Patched.renderDiagnostics(Fixed).c_str());
    return 3;
  }
  std::optional<Grammar> G2 = std::move(Patched.G);
  GrammarAnalysis A2(*G2);
  Automaton M2(*G2, A2);
  ParseTable T2(M2);
  unsigned Resolved = 0;
  for (const Conflict &C : T2.conflicts())
    if (!C.reported())
      ++Resolved;
  std::printf("after:  %zu reported conflicts (%u resolved by the new "
              "precedence)\n",
              T2.reportedConflicts().size(), Resolved);

  // Explain anything that remains.
  CounterexampleFinder Finder(T2);
  for (const Conflict &C : T2.reportedConflicts())
    std::printf("\n%s", Finder.render(Finder.examine(C)).c_str());
  return T2.reportedConflicts().empty() ? 0 : 1;
}
