//===- examples/calculator.cpp - Precedence-resolved parsing ---*- C++ -*-===//
//
// Part of lalrcex.
//
// Shows the other half of the story: once precedence declarations resolve
// a grammar's conflicts (paper §2.4), the very same tables drive a
// deterministic LALR parser. Builds an arithmetic grammar, shows that its
// conflicts are all precedence-resolved, parses a few token streams, and
// evaluates them from the parse trees.
//
//===----------------------------------------------------------------------===//

#include "parser/LrParser.h"

#include "grammar/GrammarParser.h"
#include "lexer/Lexer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lalrcex;

namespace {

/// Evaluates a parse tree of the calculator grammar; NUM leaves take
/// their values from the lexed token texts.
long evaluate(const Grammar &G, const std::vector<Token> &Tokens,
              const ParseNodePtr &N) {
  if (N->isLeaf())
    return std::atol(Tokens[N->TokenIndex].Text.c_str());
  const std::vector<ParseNodePtr> &C = N->Children;
  if (C.size() == 1)
    return evaluate(G, Tokens, C[0]);
  if (C.size() == 2) // NEG expr
    return -evaluate(G, Tokens, C[1]);
  if (G.name(C[0]->Sym) == "'('") // ( expr )
    return evaluate(G, Tokens, C[1]);
  const std::string &Op = G.name(C[1]->Sym);
  long L = evaluate(G, Tokens, C[0]);
  long R = evaluate(G, Tokens, C[2]);
  if (Op == "'+'")
    return L + R;
  if (Op == "'-'")
    return L - R;
  if (Op == "'*'")
    return L * R;
  return R == 0 ? 0 : L / R;
}

} // namespace

int main() {
  GrammarParseResult Parsed = parseGrammar(R"(
%token NUM
%left '+' '-'
%left '*' '/'
%right NEG
%%
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '-' expr %prec NEG
     | '(' expr ')'
     | NUM
     ;
)");
  if (!Parsed.ok()) {
    std::fprintf(stderr, "grammar error: %zu error(s)\n", Parsed.ErrorCount);
    return 3;
  }
  std::optional<Grammar> G = std::move(Parsed.G);

  GrammarAnalysis A(*G);
  Automaton M(*G, A);
  ParseTable T(M);

  unsigned Resolved = 0;
  for (const Conflict &C : T.conflicts())
    if (!C.reported())
      ++Resolved;
  std::printf("conflicts: %zu reported, %u resolved by precedence\n\n",
              T.reportedConflicts().size(), Resolved);

  LrParser P(T);
  LexSpec Lex = LexSpec::fromGrammar(*G);
  Lex.numbers(G->symbolByName("NUM"));

  const char *Inputs[] = {
      "1 + 2 * 3",      // precedence: 7
      "1 * 2 + 3",      // 5
      "(1 + 2) * 3",    // grouping: 9
      "2 - 3 - 4",      // left assoc: -5
      "-2 - 3",         // unary minus: -5
      "100 / 5 / 2",    // left assoc: 10
      "1 + + 2",        // syntax error
      "1 $ 2",          // lex error
  };
  for (const char *In : Inputs) {
    LexOutcome L = Lex.tokenize(In);
    if (!L.Ok) {
      std::printf("%-16s => %s\n", In, L.ErrorMessage.c_str());
      continue;
    }
    ParseOutcome R = P.parse(L.symbols());
    if (R.Accepted) {
      std::printf("%-16s => %-52s = %ld\n", In,
                  R.Tree->toSExpr(*G).c_str(),
                  evaluate(*G, L.Tokens, R.Tree));
    } else {
      std::printf("%-16s => %s\n", In, R.ErrorMessage.c_str());
    }
  }
  return 0;
}
