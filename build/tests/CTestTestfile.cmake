# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/grammar_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_parser_test[1]_include.cmake")
include("/root/repo/build/tests/automaton_test[1]_include.cmake")
include("/root/repo/build/tests/parse_table_test[1]_include.cmake")
include("/root/repo/build/tests/state_item_graph_test[1]_include.cmake")
include("/root/repo/build/tests/counterexample_test[1]_include.cmake")
include("/root/repo/build/tests/lr_parser_test[1]_include.cmake")
include("/root/repo/build/tests/derivation_counter_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/unifying_search_test[1]_include.cmake")
include("/root/repo/build/tests/nonunifying_builder_test[1]_include.cmake")
include("/root/repo/build/tests/random_grammar_test[1]_include.cmake")
include("/root/repo/build/tests/canonical_lr1_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/derivation_test[1]_include.cmake")
include("/root/repo/build/tests/language_integration_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/golden_report_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
