file(REMOVE_RECURSE
  "CMakeFiles/state_item_graph_test.dir/StateItemGraphTest.cpp.o"
  "CMakeFiles/state_item_graph_test.dir/StateItemGraphTest.cpp.o.d"
  "state_item_graph_test"
  "state_item_graph_test.pdb"
  "state_item_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_item_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
