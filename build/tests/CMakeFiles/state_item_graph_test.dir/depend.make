# Empty dependencies file for state_item_graph_test.
# This may be replaced when dependencies are built.
