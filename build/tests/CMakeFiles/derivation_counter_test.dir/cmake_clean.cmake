file(REMOVE_RECURSE
  "CMakeFiles/derivation_counter_test.dir/DerivationCounterTest.cpp.o"
  "CMakeFiles/derivation_counter_test.dir/DerivationCounterTest.cpp.o.d"
  "derivation_counter_test"
  "derivation_counter_test.pdb"
  "derivation_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivation_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
