# Empty compiler generated dependencies file for language_integration_test.
# This may be replaced when dependencies are built.
