file(REMOVE_RECURSE
  "CMakeFiles/language_integration_test.dir/LanguageIntegrationTest.cpp.o"
  "CMakeFiles/language_integration_test.dir/LanguageIntegrationTest.cpp.o.d"
  "language_integration_test"
  "language_integration_test.pdb"
  "language_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
