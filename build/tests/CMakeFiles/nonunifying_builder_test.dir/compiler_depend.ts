# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nonunifying_builder_test.
