# Empty compiler generated dependencies file for nonunifying_builder_test.
# This may be replaced when dependencies are built.
