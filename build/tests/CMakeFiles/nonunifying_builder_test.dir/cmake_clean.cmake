file(REMOVE_RECURSE
  "CMakeFiles/nonunifying_builder_test.dir/NonunifyingBuilderTest.cpp.o"
  "CMakeFiles/nonunifying_builder_test.dir/NonunifyingBuilderTest.cpp.o.d"
  "nonunifying_builder_test"
  "nonunifying_builder_test.pdb"
  "nonunifying_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonunifying_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
