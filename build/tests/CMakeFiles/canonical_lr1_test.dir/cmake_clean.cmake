file(REMOVE_RECURSE
  "CMakeFiles/canonical_lr1_test.dir/CanonicalLr1Test.cpp.o"
  "CMakeFiles/canonical_lr1_test.dir/CanonicalLr1Test.cpp.o.d"
  "canonical_lr1_test"
  "canonical_lr1_test.pdb"
  "canonical_lr1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canonical_lr1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
