# Empty compiler generated dependencies file for canonical_lr1_test.
# This may be replaced when dependencies are built.
