# Empty compiler generated dependencies file for lr_parser_test.
# This may be replaced when dependencies are built.
