file(REMOVE_RECURSE
  "CMakeFiles/lr_parser_test.dir/LrParserTest.cpp.o"
  "CMakeFiles/lr_parser_test.dir/LrParserTest.cpp.o.d"
  "lr_parser_test"
  "lr_parser_test.pdb"
  "lr_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
