file(REMOVE_RECURSE
  "CMakeFiles/golden_report_test.dir/GoldenReportTest.cpp.o"
  "CMakeFiles/golden_report_test.dir/GoldenReportTest.cpp.o.d"
  "golden_report_test"
  "golden_report_test.pdb"
  "golden_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
