# Empty dependencies file for golden_report_test.
# This may be replaced when dependencies are built.
