# Empty dependencies file for random_grammar_test.
# This may be replaced when dependencies are built.
