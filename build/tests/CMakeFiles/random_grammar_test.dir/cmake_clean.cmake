file(REMOVE_RECURSE
  "CMakeFiles/random_grammar_test.dir/RandomGrammarTest.cpp.o"
  "CMakeFiles/random_grammar_test.dir/RandomGrammarTest.cpp.o.d"
  "random_grammar_test"
  "random_grammar_test.pdb"
  "random_grammar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_grammar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
