# Empty dependencies file for counterexample_test.
# This may be replaced when dependencies are built.
