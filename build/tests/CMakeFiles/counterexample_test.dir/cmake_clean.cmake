file(REMOVE_RECURSE
  "CMakeFiles/counterexample_test.dir/CounterexampleTest.cpp.o"
  "CMakeFiles/counterexample_test.dir/CounterexampleTest.cpp.o.d"
  "counterexample_test"
  "counterexample_test.pdb"
  "counterexample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterexample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
