file(REMOVE_RECURSE
  "CMakeFiles/parse_table_test.dir/ParseTableTest.cpp.o"
  "CMakeFiles/parse_table_test.dir/ParseTableTest.cpp.o.d"
  "parse_table_test"
  "parse_table_test.pdb"
  "parse_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
