file(REMOVE_RECURSE
  "CMakeFiles/unifying_search_test.dir/UnifyingSearchTest.cpp.o"
  "CMakeFiles/unifying_search_test.dir/UnifyingSearchTest.cpp.o.d"
  "unifying_search_test"
  "unifying_search_test.pdb"
  "unifying_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unifying_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
