# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unifying_search_test.
