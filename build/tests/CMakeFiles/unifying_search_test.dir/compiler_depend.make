# Empty compiler generated dependencies file for unifying_search_test.
# This may be replaced when dependencies are built.
