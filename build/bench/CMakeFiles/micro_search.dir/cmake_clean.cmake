file(REMOVE_RECURSE
  "CMakeFiles/micro_search.dir/micro_search.cpp.o"
  "CMakeFiles/micro_search.dir/micro_search.cpp.o.d"
  "micro_search"
  "micro_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
