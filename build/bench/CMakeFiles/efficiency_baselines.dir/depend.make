# Empty dependencies file for efficiency_baselines.
# This may be replaced when dependencies are built.
