file(REMOVE_RECURSE
  "CMakeFiles/efficiency_baselines.dir/efficiency_baselines.cpp.o"
  "CMakeFiles/efficiency_baselines.dir/efficiency_baselines.cpp.o.d"
  "efficiency_baselines"
  "efficiency_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
