# Empty dependencies file for effectiveness_ppg.
# This may be replaced when dependencies are built.
