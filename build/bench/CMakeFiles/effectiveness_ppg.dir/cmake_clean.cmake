file(REMOVE_RECURSE
  "CMakeFiles/effectiveness_ppg.dir/effectiveness_ppg.cpp.o"
  "CMakeFiles/effectiveness_ppg.dir/effectiveness_ppg.cpp.o.d"
  "effectiveness_ppg"
  "effectiveness_ppg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effectiveness_ppg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
