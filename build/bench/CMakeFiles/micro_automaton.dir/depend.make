# Empty dependencies file for micro_automaton.
# This may be replaced when dependencies are built.
