# Empty compiler generated dependencies file for conflict_fixer.
# This may be replaced when dependencies are built.
