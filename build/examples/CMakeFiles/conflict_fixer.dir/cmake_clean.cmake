file(REMOVE_RECURSE
  "CMakeFiles/conflict_fixer.dir/conflict_fixer.cpp.o"
  "CMakeFiles/conflict_fixer.dir/conflict_fixer.cpp.o.d"
  "conflict_fixer"
  "conflict_fixer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_fixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
