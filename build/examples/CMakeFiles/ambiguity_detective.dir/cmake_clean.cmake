file(REMOVE_RECURSE
  "CMakeFiles/ambiguity_detective.dir/ambiguity_detective.cpp.o"
  "CMakeFiles/ambiguity_detective.dir/ambiguity_detective.cpp.o.d"
  "ambiguity_detective"
  "ambiguity_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambiguity_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
