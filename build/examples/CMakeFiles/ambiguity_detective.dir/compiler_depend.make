# Empty compiler generated dependencies file for ambiguity_detective.
# This may be replaced when dependencies are built.
