# Empty compiler generated dependencies file for grammar_debugger.
# This may be replaced when dependencies are built.
