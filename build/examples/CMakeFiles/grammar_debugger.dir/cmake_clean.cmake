file(REMOVE_RECURSE
  "CMakeFiles/grammar_debugger.dir/grammar_debugger.cpp.o"
  "CMakeFiles/grammar_debugger.dir/grammar_debugger.cpp.o.d"
  "grammar_debugger"
  "grammar_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
