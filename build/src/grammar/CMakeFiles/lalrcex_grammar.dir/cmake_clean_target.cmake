file(REMOVE_RECURSE
  "liblalrcex_grammar.a"
)
