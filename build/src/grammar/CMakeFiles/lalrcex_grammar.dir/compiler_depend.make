# Empty compiler generated dependencies file for lalrcex_grammar.
# This may be replaced when dependencies are built.
