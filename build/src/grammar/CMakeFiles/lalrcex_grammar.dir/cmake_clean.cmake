file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_grammar.dir/Analysis.cpp.o"
  "CMakeFiles/lalrcex_grammar.dir/Analysis.cpp.o.d"
  "CMakeFiles/lalrcex_grammar.dir/Grammar.cpp.o"
  "CMakeFiles/lalrcex_grammar.dir/Grammar.cpp.o.d"
  "CMakeFiles/lalrcex_grammar.dir/GrammarBuilder.cpp.o"
  "CMakeFiles/lalrcex_grammar.dir/GrammarBuilder.cpp.o.d"
  "CMakeFiles/lalrcex_grammar.dir/GrammarParser.cpp.o"
  "CMakeFiles/lalrcex_grammar.dir/GrammarParser.cpp.o.d"
  "CMakeFiles/lalrcex_grammar.dir/GrammarPrinter.cpp.o"
  "CMakeFiles/lalrcex_grammar.dir/GrammarPrinter.cpp.o.d"
  "liblalrcex_grammar.a"
  "liblalrcex_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
