file(REMOVE_RECURSE
  "liblalrcex_lexer.a"
)
