file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/lalrcex_lexer.dir/Lexer.cpp.o.d"
  "liblalrcex_lexer.a"
  "liblalrcex_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
