# Empty compiler generated dependencies file for lalrcex_lexer.
# This may be replaced when dependencies are built.
