# Empty compiler generated dependencies file for lalrcex_parser.
# This may be replaced when dependencies are built.
