file(REMOVE_RECURSE
  "liblalrcex_parser.a"
)
