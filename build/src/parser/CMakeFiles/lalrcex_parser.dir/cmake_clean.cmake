file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_parser.dir/LrParser.cpp.o"
  "CMakeFiles/lalrcex_parser.dir/LrParser.cpp.o.d"
  "liblalrcex_parser.a"
  "liblalrcex_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
