# Empty dependencies file for lalrcex_sat.
# This may be replaced when dependencies are built.
