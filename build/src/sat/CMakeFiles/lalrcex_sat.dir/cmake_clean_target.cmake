file(REMOVE_RECURSE
  "liblalrcex_sat.a"
)
