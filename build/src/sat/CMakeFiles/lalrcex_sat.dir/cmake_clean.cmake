file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_sat.dir/Solver.cpp.o"
  "CMakeFiles/lalrcex_sat.dir/Solver.cpp.o.d"
  "liblalrcex_sat.a"
  "liblalrcex_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
