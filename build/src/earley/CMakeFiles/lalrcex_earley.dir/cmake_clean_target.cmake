file(REMOVE_RECURSE
  "liblalrcex_earley.a"
)
