# Empty compiler generated dependencies file for lalrcex_earley.
# This may be replaced when dependencies are built.
