file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_earley.dir/DerivationCounter.cpp.o"
  "CMakeFiles/lalrcex_earley.dir/DerivationCounter.cpp.o.d"
  "liblalrcex_earley.a"
  "liblalrcex_earley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_earley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
