file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_counterexample.dir/Advisor.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/Advisor.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/CounterexampleFinder.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/CounterexampleFinder.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/Derivation.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/Derivation.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/LookaheadSensitiveSearch.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/LookaheadSensitiveSearch.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/NonunifyingBuilder.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/NonunifyingBuilder.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/StateItemGraph.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/StateItemGraph.cpp.o.d"
  "CMakeFiles/lalrcex_counterexample.dir/UnifyingSearch.cpp.o"
  "CMakeFiles/lalrcex_counterexample.dir/UnifyingSearch.cpp.o.d"
  "liblalrcex_counterexample.a"
  "liblalrcex_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
