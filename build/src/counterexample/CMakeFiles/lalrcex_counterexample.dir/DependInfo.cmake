
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counterexample/Advisor.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/Advisor.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/Advisor.cpp.o.d"
  "/root/repo/src/counterexample/CounterexampleFinder.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/CounterexampleFinder.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/CounterexampleFinder.cpp.o.d"
  "/root/repo/src/counterexample/Derivation.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/Derivation.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/Derivation.cpp.o.d"
  "/root/repo/src/counterexample/LookaheadSensitiveSearch.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/LookaheadSensitiveSearch.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/LookaheadSensitiveSearch.cpp.o.d"
  "/root/repo/src/counterexample/NonunifyingBuilder.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/NonunifyingBuilder.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/NonunifyingBuilder.cpp.o.d"
  "/root/repo/src/counterexample/StateItemGraph.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/StateItemGraph.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/StateItemGraph.cpp.o.d"
  "/root/repo/src/counterexample/UnifyingSearch.cpp" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/UnifyingSearch.cpp.o" "gcc" "src/counterexample/CMakeFiles/lalrcex_counterexample.dir/UnifyingSearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lr/CMakeFiles/lalrcex_lr.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/lalrcex_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lalrcex_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
