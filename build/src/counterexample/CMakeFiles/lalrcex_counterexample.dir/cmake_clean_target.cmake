file(REMOVE_RECURSE
  "liblalrcex_counterexample.a"
)
