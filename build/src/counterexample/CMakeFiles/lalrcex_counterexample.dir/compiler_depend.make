# Empty compiler generated dependencies file for lalrcex_counterexample.
# This may be replaced when dependencies are built.
