file(REMOVE_RECURSE
  "liblalrcex_lr.a"
)
