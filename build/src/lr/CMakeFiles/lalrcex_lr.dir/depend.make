# Empty dependencies file for lalrcex_lr.
# This may be replaced when dependencies are built.
