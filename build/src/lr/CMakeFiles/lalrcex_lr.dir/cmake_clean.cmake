file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_lr.dir/Automaton.cpp.o"
  "CMakeFiles/lalrcex_lr.dir/Automaton.cpp.o.d"
  "CMakeFiles/lalrcex_lr.dir/AutomatonPrinter.cpp.o"
  "CMakeFiles/lalrcex_lr.dir/AutomatonPrinter.cpp.o.d"
  "CMakeFiles/lalrcex_lr.dir/ParseTable.cpp.o"
  "CMakeFiles/lalrcex_lr.dir/ParseTable.cpp.o.d"
  "liblalrcex_lr.a"
  "liblalrcex_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
