file(REMOVE_RECURSE
  "liblalrcex_baseline.a"
)
