file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_baseline.dir/AmberDetector.cpp.o"
  "CMakeFiles/lalrcex_baseline.dir/AmberDetector.cpp.o.d"
  "CMakeFiles/lalrcex_baseline.dir/CfgAnalyzerDetector.cpp.o"
  "CMakeFiles/lalrcex_baseline.dir/CfgAnalyzerDetector.cpp.o.d"
  "CMakeFiles/lalrcex_baseline.dir/CnfTransform.cpp.o"
  "CMakeFiles/lalrcex_baseline.dir/CnfTransform.cpp.o.d"
  "CMakeFiles/lalrcex_baseline.dir/PpgFinder.cpp.o"
  "CMakeFiles/lalrcex_baseline.dir/PpgFinder.cpp.o.d"
  "liblalrcex_baseline.a"
  "liblalrcex_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
