# Empty dependencies file for lalrcex_baseline.
# This may be replaced when dependencies are built.
