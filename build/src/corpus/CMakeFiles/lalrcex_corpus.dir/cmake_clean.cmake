file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusC.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusC.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusJava.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusJava.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusPascal.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusPascal.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusSql.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusSql.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusStackOverflow.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusStackOverflow.cpp.o.d"
  "CMakeFiles/lalrcex_corpus.dir/CorpusSynthetic.cpp.o"
  "CMakeFiles/lalrcex_corpus.dir/CorpusSynthetic.cpp.o.d"
  "liblalrcex_corpus.a"
  "liblalrcex_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
