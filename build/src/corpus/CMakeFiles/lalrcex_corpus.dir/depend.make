# Empty dependencies file for lalrcex_corpus.
# This may be replaced when dependencies are built.
