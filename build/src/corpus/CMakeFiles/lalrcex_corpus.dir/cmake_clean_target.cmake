file(REMOVE_RECURSE
  "liblalrcex_corpus.a"
)
