
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/CorpusC.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusC.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusC.cpp.o.d"
  "/root/repo/src/corpus/CorpusJava.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusJava.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusJava.cpp.o.d"
  "/root/repo/src/corpus/CorpusPascal.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusPascal.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusPascal.cpp.o.d"
  "/root/repo/src/corpus/CorpusSql.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusSql.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusSql.cpp.o.d"
  "/root/repo/src/corpus/CorpusStackOverflow.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusStackOverflow.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusStackOverflow.cpp.o.d"
  "/root/repo/src/corpus/CorpusSynthetic.cpp" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusSynthetic.cpp.o" "gcc" "src/corpus/CMakeFiles/lalrcex_corpus.dir/CorpusSynthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grammar/CMakeFiles/lalrcex_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lalrcex_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
