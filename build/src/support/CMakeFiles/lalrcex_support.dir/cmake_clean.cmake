file(REMOVE_RECURSE
  "CMakeFiles/lalrcex_support.dir/IndexSet.cpp.o"
  "CMakeFiles/lalrcex_support.dir/IndexSet.cpp.o.d"
  "CMakeFiles/lalrcex_support.dir/StrUtil.cpp.o"
  "CMakeFiles/lalrcex_support.dir/StrUtil.cpp.o.d"
  "liblalrcex_support.a"
  "liblalrcex_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lalrcex_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
