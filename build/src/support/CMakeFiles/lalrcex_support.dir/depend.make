# Empty dependencies file for lalrcex_support.
# This may be replaced when dependencies are built.
