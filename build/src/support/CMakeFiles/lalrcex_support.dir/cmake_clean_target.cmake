file(REMOVE_RECURSE
  "liblalrcex_support.a"
)
